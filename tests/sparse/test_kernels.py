"""Kernel registry semantics and scipy-vs-numpy backend agreement."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import KernelError
from repro.sparse import (
    OPS,
    SegmentPlan,
    available_backends,
    current_backend,
    kernel,
    register_kernel,
    set_backend,
    use_backend,
)


@pytest.fixture
def plan():
    rng = np.random.default_rng(1)
    return SegmentPlan(rng.integers(0, 9, size=60), 9)


class TestRegistry:
    def test_required_backends_registered(self):
        assert "scipy" in available_backends()
        assert "numpy" in available_backends()

    def test_default_backend_is_scipy(self):
        assert current_backend() == "scipy"

    def test_register_unknown_op_raises(self):
        with pytest.raises(KernelError, match="unknown kernel op"):
            register_kernel("segment_frobnicate", "scipy", lambda *a: None)

    def test_set_unknown_backend_raises(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            set_backend("cuda")

    def test_resolve_unknown_op_raises(self):
        with pytest.raises(KernelError, match="unknown kernel op"):
            kernel("segment_frobnicate")

    def test_use_backend_restores_on_exit(self):
        assert current_backend() == "scipy"
        with use_backend("numpy"):
            assert current_backend() == "numpy"
        assert current_backend() == "scipy"
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert current_backend() == "scipy"

    def test_partial_backend_falls_back_to_scipy(self, plan):
        """A plugin implementing one op inherits scipy for the rest."""
        calls = []

        def traced_scatter(p, values):
            calls.append("plugin")
            return p.matrix @ values

        register_kernel("scatter_add", "plugin-test", traced_scatter)
        try:
            with use_backend("plugin-test"):
                values = np.ones((plan.num_items, 2))
                out = kernel("scatter_add")(plan, values)
                np.testing.assert_allclose(out[:, 0], plan.counts)
                # segment_max has no plugin impl: scipy fallback, no error.
                kernel("segment_max")(plan, values)
            assert calls == ["plugin"]
        finally:
            # De-register by overwriting with the scipy impl is not needed;
            # the throwaway backend just stays inactive.
            pass


class TestBackendAgreement:
    """Every op: scipy CSR result == numpy dense-scatter reference."""

    @pytest.mark.parametrize("op", [o for o in OPS if o != "spmm"])
    def test_plan_ops_agree(self, plan, op):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(plan.num_items, 4))
        if op == "gather_scatter":
            cols = rng.integers(0, 5, size=plan.num_items)
            weights = rng.normal(size=(plan.num_items, 3))
            dense = rng.normal(size=(5, 4))
            args = (plan, cols, weights, dense)
        else:
            args = (plan, values)
        with use_backend("scipy"):
            a = kernel(op)(*args)
        with use_backend("numpy"):
            b = kernel(op)(*args)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-8)

    def test_spmm_agrees(self):
        rng = np.random.default_rng(3)
        matrix = sp.random(6, 11, density=0.4, random_state=4, format="csr")
        dense = rng.normal(size=(11, 5))
        with use_backend("scipy"):
            a = kernel("spmm")(matrix, dense)
        with use_backend("numpy"):
            b = kernel("spmm")(matrix, dense)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-8)

    def test_segment_max_empty_segments_are_minus_inf(self, plan):
        index = np.array([0, 0, 2])
        small = SegmentPlan(index, 4)
        values = np.array([[1.0], [3.0], [-2.0]])
        for backend in ("scipy", "numpy"):
            with use_backend(backend):
                out = kernel("segment_max")(small, values)
            np.testing.assert_array_equal(out[:, 0],
                                          [3.0, -np.inf, -2.0, -np.inf])

    @pytest.mark.parametrize("backend", ["scipy", "numpy"])
    def test_gather_scatter_broadcasts_shared_operands(self, backend):
        """Bw==1 coefficients and 2-D dense both re-expand correctly."""
        rng = np.random.default_rng(5)
        index = rng.integers(0, 4, size=12)
        cols = rng.integers(0, 6, size=12)
        plan = SegmentPlan(index, 4)
        dense3 = rng.normal(size=(6, 3, 2))          # per-row payloads
        shared_w = rng.normal(size=(12, 1))          # batch-shared coeff
        per_row_w = rng.normal(size=(12, 3))
        dense2 = rng.normal(size=(6, 2))             # batch-shared payload

        def reference(weights, dense):
            B = max(weights.shape[1], dense.shape[1] if dense.ndim == 3 else 1)
            out = np.zeros((4, B, 2))
            for i in range(12):
                for b in range(B):
                    w = weights[i, b if weights.shape[1] > 1 else 0]
                    d = dense[cols[i]] if dense.ndim == 2 else \
                        dense[cols[i], b if dense.shape[1] > 1 else 0]
                    out[index[i], b] += w * d
            return out

        with use_backend(backend):
            for weights, dense in ((shared_w, dense3), (per_row_w, dense2),
                                   (per_row_w, dense3), (shared_w, dense2)):
                out = kernel("gather_scatter")(plan, cols, weights, dense)
                np.testing.assert_allclose(out, reference(weights, dense),
                                           rtol=0, atol=1e-8)
