"""SegmentPlan compilation: validation, CSR assembly, shape guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.sparse import SegmentPlan, augmented_edges, num_layer_edges


class TestSegmentPlan:
    def test_compiles_order_indptr_counts(self):
        index = np.array([2, 0, 2, 1, 0])
        plan = SegmentPlan(index, 3)
        assert plan.num_items == 5
        assert plan.num_rows == 3
        np.testing.assert_array_equal(plan.counts, [2.0, 1.0, 2.0])
        np.testing.assert_array_equal(plan.indptr, [0, 2, 3, 5])
        # Stable sort: within a segment, items keep their original order.
        np.testing.assert_array_equal(plan.order, [1, 4, 3, 0, 2])

    def test_matrix_is_segment_sum(self):
        rng = np.random.default_rng(0)
        index = rng.integers(0, 7, size=40)
        values = rng.normal(size=(40, 3))
        plan = SegmentPlan(index, 7)
        expected = np.zeros((7, 3))
        np.add.at(expected, index, values)
        np.testing.assert_allclose(plan.matrix @ values, expected, atol=1e-12)

    def test_matrix_is_cached(self):
        plan = SegmentPlan(np.array([0, 1]), 2)
        assert plan.matrix is plan.matrix

    def test_empty_index(self):
        plan = SegmentPlan(np.array([], dtype=np.int64), 4)
        assert plan.num_items == 0
        np.testing.assert_array_equal(plan.counts, np.zeros(4))
        assert plan.matrix.shape == (4, 0)

    def test_rejects_2d_index(self):
        with pytest.raises(KernelError, match="1-D"):
            SegmentPlan(np.zeros((2, 2), dtype=np.int64), 2)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(KernelError, match=r"\[0, 3\)"):
            SegmentPlan(np.array([0, 3]), 3)
        with pytest.raises(KernelError):
            SegmentPlan(np.array([-1, 0]), 3)

    def test_check_shape_guard(self):
        plan = SegmentPlan(np.array([0, 1, 1]), 2)
        plan.check_shape(3, 2)
        with pytest.raises(KernelError, match="compiled for"):
            plan.check_shape(4, 2)
        with pytest.raises(KernelError, match="compiled for"):
            plan.check_shape(3, 5)


class TestAugmentedEdges:
    def test_layer_edge_id_convention(self):
        edge_index = np.array([[0, 2], [1, 0]])
        src, dst = augmented_edges(edge_index, 3)
        # Data edges [0, E) first, then one self-loop per node at [E, E+N).
        np.testing.assert_array_equal(src, [0, 2, 0, 1, 2])
        np.testing.assert_array_equal(dst, [1, 0, 0, 1, 2])
        assert num_layer_edges(2, 3) == 5
