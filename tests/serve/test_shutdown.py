"""Graceful-shutdown contract of the daemon.

The acceptance bar: inflight requests drain to completion (200), queued
requests fail cleanly (503), the listening socket closes (connection
refused), and the loop is left with zero pending tasks.
"""

import asyncio
import threading

import pytest

from repro.serve import ServeApp, ServeConfig

from .conftest import echo_runner, http_request


BODY = {"dataset": "ba_shapes", "model": "gcn", "explainer": "flowx"}


class TestGracefulShutdown:
    def test_inflight_200_queued_503_sockets_closed_no_orphans(self):
        started = threading.Event()
        release = threading.Event()

        def gated(requests):
            started.set()
            assert release.wait(timeout=10.0)
            return echo_runner(requests)

        async def main():
            app = ServeApp(ServeConfig(port=0, max_batch=1, max_linger_ms=0.0),
                           batch_runner=gated)
            await app.start()
            port = app.port

            inflight = asyncio.ensure_future(http_request(
                port, "/explain", "POST", body={**BODY, "target": 0}))
            while not started.is_set():
                await asyncio.sleep(0.005)
            queued = asyncio.ensure_future(http_request(
                port, "/explain", "POST", body={**BODY, "target": 1}))
            while app.coalescer.queue_depth() < 1:
                await asyncio.sleep(0.005)

            shutdown = asyncio.ensure_future(app.shutdown())
            await asyncio.sleep(0.02)
            assert app.draining
            release.set()
            await shutdown

            inflight_result = await inflight
            queued_result = await queued

            with pytest.raises(ConnectionError):
                await asyncio.open_connection("127.0.0.1", port)

            pending = [t for t in asyncio.all_tasks()
                       if t is not asyncio.current_task()]
            return inflight_result, queued_result, pending

        inflight_result, queued_result, pending = asyncio.run(main())
        status, payload, _ = inflight_result
        assert status == 200
        assert payload["explanation"]["target"] == 0
        assert queued_result[0] == 503
        assert "shut down" in queued_result[1]["error"]["message"]
        assert pending == []

    def test_idle_keepalive_connection_closed(self):
        async def main():
            app = ServeApp(ServeConfig(port=0, max_linger_ms=0.0),
                           batch_runner=echo_runner)
            await app.start()
            # A request that keeps its connection open, then goes idle.
            status, _, _, reader, writer = await http_request(
                app.port, "/explain", "POST", body={**BODY, "target": 2},
                keep_open=True)
            assert status == 200
            await app.shutdown()
            # The daemon closed the idle socket: reads hit EOF.
            assert await reader.read() == b""
            writer.close()
            pending = [t for t in asyncio.all_tasks()
                       if t is not asyncio.current_task()]
            assert pending == []

        asyncio.run(main())

    def test_responses_during_drain_close_connection(self):
        started = threading.Event()
        release = threading.Event()

        def gated(requests):
            started.set()
            assert release.wait(timeout=10.0)
            return echo_runner(requests)

        async def main():
            app = ServeApp(ServeConfig(port=0, max_batch=1, max_linger_ms=0.0),
                           batch_runner=gated)
            await app.start()
            inflight = asyncio.ensure_future(http_request(
                app.port, "/explain", "POST", body={**BODY, "target": 0},
                keep_open=True))
            while not started.is_set():
                await asyncio.sleep(0.005)
            shutdown = asyncio.ensure_future(app.shutdown())
            await asyncio.sleep(0.02)
            release.set()
            await shutdown
            status, _, headers, reader, writer = await inflight
            assert status == 200
            # Drain responses advertise Connection: close and the socket
            # really is closed afterwards.
            assert headers["connection"] == "close"
            assert await reader.read() == b""
            writer.close()

        asyncio.run(main())

    def test_shutdown_idempotent(self):
        async def main():
            app = ServeApp(ServeConfig(port=0), batch_runner=echo_runner)
            await app.start()
            await app.shutdown()
            await app.shutdown()
            with pytest.raises(ConnectionError):
                await asyncio.open_connection("127.0.0.1", app.port)

        asyncio.run(main())

    def test_shutdown_before_any_request(self):
        async def main():
            app = ServeApp(ServeConfig(port=0), batch_runner=echo_runner)
            await app.start()
            await app.shutdown()
            pending = [t for t in asyncio.all_tasks()
                       if t is not asyncio.current_task()]
            assert pending == []

        asyncio.run(main())
