"""Shared helpers for the serving-daemon tests.

Tests drive the real asyncio server over real sockets; the helpers here
are a tiny HTTP/1.1 client (stdlib streams, mirroring what curl sends)
and factories for requests and stub batch runners. Each test owns its
event loop via ``asyncio.run`` — no asyncio pytest plugin is assumed.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import ExplainRequest


async def http_request(port: int, path: str, method: str = "GET",
                       body: dict | None = None, host: str = "127.0.0.1",
                       keep_open: bool = False):
    """One HTTP exchange; returns ``(status, payload, headers)``.

    With ``keep_open`` the connection stays alive and
    ``(status, payload, headers, reader, writer)`` is returned so a test
    can issue follow-up requests on the same socket.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        status, payload, headers = await send_request(
            reader, writer, path, method=method, body=body,
            close=not keep_open)
    except BaseException:
        writer.close()
        raise
    if keep_open:
        return status, payload, headers, reader, writer
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return status, payload, headers


async def send_request(reader, writer, path: str, method: str = "GET",
                       body: dict | None = None, close: bool = True):
    """Write one request on an open connection and parse the response."""
    connection = "close" if close else "keep-alive"
    if body is not None:
        raw = json.dumps(body).encode()
        head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(raw)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode() + raw)
    else:
        writer.write((f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                      f"Connection: {connection}\r\n\r\n").encode())
    await writer.drain()

    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = None
    if "content-length" in headers:
        raw = await reader.readexactly(int(headers["content-length"]))
        payload = json.loads(raw)
    return status, payload, headers


def make_request(target=0, explainer="flowx", dataset="ba_shapes",
                 conv="gcn", mode="factual", timeout=None, **params):
    """An :class:`ExplainRequest` for coalescer-level tests."""
    from repro.execution import ExecutionConfig

    return ExplainRequest(
        dataset=dataset, conv=conv, explainer=explainer, target=target,
        mode=mode, params=tuple(sorted(params.items())),
        execution=ExecutionConfig(timeout=timeout))


def echo_runner(requests):
    """Instant stub runner: answers with the request coordinates."""
    from repro.explain import as_node_id

    return [{"explanation": {"explainer": r.explainer,
                             "target": as_node_id(r.target)},
             "perf": {"explain_seconds": 0.0}, "trace_id": None}
            for r in requests]


async def poll(predicate, timeout: float = 5.0, interval: float = 0.005):
    """Await until ``predicate()`` is true (tests' cross-thread sync)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


@pytest.fixture
def explain_body():
    """A minimal valid ``POST /explain`` JSON body."""
    return {"dataset": "ba_shapes", "model": "gcn", "explainer": "flowx",
            "target": 3}
