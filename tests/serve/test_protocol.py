"""Wire schema: request validation and the deterministic response split."""

import json

import numpy as np
import pytest

from repro.errors import ServeError
from repro.explain import ExplainTarget
from repro.explain.base import Explanation
from repro.serve import canonical_bytes, parse_explain_request, wire_explanation


def body(**overrides):
    payload = {"dataset": "ba_shapes", "model": "gcn", "explainer": "flowx"}
    payload.update(overrides)
    return payload


class TestParseExplainRequest:
    def test_minimal_request_defaults(self):
        req = parse_explain_request(body(target={"node": 7}))
        assert req.dataset == "ba_shapes"
        assert req.conv == "gcn"
        assert req.explainer == "flowx"
        assert req.target == ExplainTarget.node(7)
        assert req.mode == "factual"
        assert req.scale is None
        assert req.model_seed == 0
        assert req.params == ()
        assert req.execution.timeout is None
        assert req.sampled is False

    def test_target_wire_forms(self):
        assert parse_explain_request(body(target={"link": [1, 2]})).target \
            == ExplainTarget.link(1, 2)
        assert parse_explain_request(body(target={"graph": 3})).target \
            == ExplainTarget.graph(3)
        assert parse_explain_request(body()).target is None

    def test_bare_int_target_deprecated_but_resolved(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            req = parse_explain_request(body(target=7))
        assert req.target == ExplainTarget.node(7)  # ba_shapes is a node task

    def test_sampled_flag(self):
        assert parse_explain_request(body(sampled=True)).sampled is True
        with pytest.raises(ServeError, match='"sampled" must be a boolean'):
            parse_explain_request(body(sampled=1))

    def test_sampled_is_part_of_the_batch_key(self):
        # A sampled answer carries extraction metadata, so it must never
        # coalesce with (or deduplicate against) the full-path answer.
        plain = parse_explain_request(body(target={"node": 1}))
        sampled = parse_explain_request(body(target={"node": 1}, sampled=True))
        assert plain.batch_key != sampled.batch_key
        assert plain.dedup_key != sampled.dedup_key

    def test_names_normalized(self):
        req = parse_explain_request(body(dataset="BA-Shapes", model="GCN",
                                         explainer="Gnn-LRP"))
        assert req.dataset == "ba_shapes"
        assert req.conv == "gcn"
        assert req.explainer == "gnn_lrp"

    def test_key_hierarchy(self):
        a = parse_explain_request(body(target=1, params={"samples": 4}))
        b = parse_explain_request(body(target=2, params={"samples": 4}))
        c = parse_explain_request(body(target=1, params={"samples": 4}))
        assert a.model_key == b.model_key
        assert a.batch_key == b.batch_key
        assert a.dedup_key != b.dedup_key
        assert a.dedup_key == c.dedup_key

    def test_params_order_insensitive(self):
        a = parse_explain_request(body(params={"samples": 4, "seed": 1}))
        c = parse_explain_request(body(params={"seed": 1, "samples": 4}))
        assert a.dedup_key == c.dedup_key

    def test_non_object_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_explain_request([1, 2])

    def test_missing_fields_named(self):
        with pytest.raises(ServeError, match="explainer"):
            parse_explain_request({"dataset": "ba_shapes", "model": "gcn"})

    def test_unknown_key_did_you_mean(self):
        with pytest.raises(ServeError, match="did you mean 'explainer'"):
            parse_explain_request(body(explianer="flowx", explainer="flowx"))

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ServeError, match="unknown dataset"):
            parse_explain_request(body(dataset="imagenet"))

    def test_unknown_conv_rejected(self):
        with pytest.raises(ServeError, match="unknown model"):
            parse_explain_request(body(model="transformer"))

    def test_bad_mode_rejected(self):
        with pytest.raises(ServeError, match="unknown mode"):
            parse_explain_request(body(mode="casual"))

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ServeError, match="JSON scalar"):
            parse_explain_request(body(params={"weights": [1, 2]}))

    def test_bad_target_rejected(self):
        with pytest.raises(ServeError, match="target"):
            parse_explain_request(body(target="seven"))

    def test_bad_scale_rejected(self):
        with pytest.raises(ServeError, match="scale"):
            parse_explain_request(body(scale=-1.0))

    def test_timeout_shorthand(self):
        req = parse_explain_request(body(timeout=2.5))
        assert req.execution.timeout == 2.5

    def test_execution_budget(self):
        req = parse_explain_request(body(execution={"timeout": 1.5}))
        assert req.execution.timeout == 1.5

    def test_unknown_execution_key_hinted(self):
        with pytest.raises(ServeError, match="did you mean 'timeout'"):
            parse_explain_request(body(execution={"timeotu": 1.0}))

    def test_negative_timeout_rejected(self):
        with pytest.raises(ServeError, match="positive"):
            parse_explain_request(body(timeout=-1))


class TestWireExplanation:
    def _explanation(self):
        return Explanation(
            edge_scores=np.array([0.5, 0.25], dtype=np.float64),
            predicted_class=1, method="flowx", mode="factual", target=3,
            meta={"params": {"samples": 4},
                  "perf": {"explain_seconds": 0.123},
                  "trace_id": "abc123",
                  "note": "kept"},
        )

    def test_volatile_meta_hoisted(self):
        payload, perf, trace_id = wire_explanation(self._explanation())
        assert perf == {"explain_seconds": 0.123}
        assert trace_id == "abc123"
        assert "perf" not in payload["meta"]
        assert "trace_id" not in payload["meta"]
        assert payload["meta"]["note"] == "kept"
        assert payload["meta"]["params"] == {"samples": 4}

    def test_payload_is_deterministic_bytes(self):
        one = wire_explanation(self._explanation())[0]
        other_exp = self._explanation()
        other_exp.meta["perf"]["explain_seconds"] = 9.9  # volatile only
        other_exp.meta["trace_id"] = "different"
        other = wire_explanation(other_exp)[0]
        assert canonical_bytes(one) == canonical_bytes(other)

    def test_canonical_bytes_round_trips_as_json(self):
        payload = wire_explanation(self._explanation())[0]
        assert json.loads(canonical_bytes(payload)) == \
            json.loads(json.dumps(payload))
