"""End-to-end daemon tests over real sockets.

Routing, error contract and coalescing metrics run against a stub
runner; the parity test runs the real numerics and asserts the serving
path answers byte-identically to the serial library path.
"""

import asyncio
import threading

from repro.eval.fidelity import Instance
from repro.explain import explain_instances, make_explainer
from repro.serve import (
    Coalescer,
    ExplainRuntime,
    ModelPool,
    ServeApp,
    ServeConfig,
    canonical_bytes,
    wire_explanation,
)

from .conftest import echo_runner, http_request, send_request


def run(coro):
    return asyncio.run(coro)


async def started_app(batch_runner=echo_runner, **config):
    config.setdefault("max_linger_ms", 10.0)
    app = ServeApp(ServeConfig(port=0, **config), batch_runner=batch_runner)
    await app.start()
    return app


class TestRoutes:
    def test_healthz(self):
        async def main():
            app = await started_app()
            status, payload, _ = await http_request(app.port, "/healthz")
            await app.shutdown()
            return status, payload

        status, payload = run(main())
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["pending"] == 0

    def test_unknown_route_404(self):
        async def main():
            app = await started_app()
            status, payload, _ = await http_request(app.port, "/nope")
            await app.shutdown()
            return status, payload

        status, payload = run(main())
        assert status == 404
        assert "/healthz" in payload["error"]["message"]

    def test_wrong_method_405(self):
        async def main():
            app = await started_app()
            get_explain = await http_request(app.port, "/explain")
            post_health = await http_request(app.port, "/healthz", "POST",
                                             body={})
            await app.shutdown()
            return get_explain, post_health

        get_explain, post_health = run(main())
        assert get_explain[0] == 405
        assert get_explain[2]["allow"] == "POST"
        assert post_health[0] == 405

    def test_malformed_body_400(self, explain_body):
        async def main():
            app = await started_app()
            empty = await http_request(app.port, "/explain", "POST", body={})
            bad_key = await http_request(
                app.port, "/explain", "POST",
                body={**explain_body, "explianer": "x"})
            await app.shutdown()
            return empty, bad_key

        empty, bad_key = run(main())
        assert empty[0] == 400
        assert "missing" in empty[1]["error"]["message"]
        assert bad_key[0] == 400
        assert "did you mean" in bad_key[1]["error"]["message"]

    def test_oversized_body_413(self, explain_body):
        async def main():
            app = await started_app(max_body_bytes=64)
            status, payload, _ = await http_request(
                app.port, "/explain", "POST",
                body={**explain_body, "params": {"pad": "x" * 256}})
            await app.shutdown()
            return status, payload

        status, payload = run(main())
        assert status == 413
        assert "exceeds" in payload["error"]["message"]

    def test_keep_alive_serves_multiple_requests(self, explain_body):
        async def main():
            app = await started_app()
            status1, payload1, _, reader, writer = await http_request(
                app.port, "/explain", "POST", body=explain_body,
                keep_open=True)
            status2, payload2, _ = await send_request(
                reader, writer, "/healthz", close=True)
            writer.close()
            await app.shutdown()
            return status1, payload1, status2, payload2

        status1, payload1, status2, _ = run(main())
        assert status1 == 200
        assert payload1["explanation"]["target"] == 3
        assert status2 == 200

    def test_metrics_and_caches(self, explain_body):
        async def main():
            app = await started_app()
            for _ in range(2):
                await http_request(app.port, "/explain", "POST",
                                   body=explain_body)
            status, payload, _ = await http_request(app.port, "/metrics")
            cstatus, cpayload, _ = await http_request(app.port, "/caches")
            await app.shutdown()
            return status, payload, cstatus, cpayload

        status, payload, cstatus, cpayload = run(main())
        assert status == 200
        assert payload["serve"]["explain_requests"] == 2
        assert payload["serve"]["responses_by_status"]["200"] >= 2
        assert payload["serve"]["latency_p50_ms"] is not None
        assert "single_forwards" in payload["perf"]
        assert "flow_cache" in payload["caches"]
        assert cstatus == 200 and "explanation_cache" in cpayload["caches"]


class TestBackpressureAndTimeouts:
    def test_429_with_retry_after(self, explain_body):
        started = threading.Event()
        release = threading.Event()

        def gated(requests):
            started.set()
            assert release.wait(timeout=10.0)
            return echo_runner(requests)

        async def main():
            app = await started_app(batch_runner=gated, max_batch=1,
                                    max_linger_ms=0.0, queue_limit=1,
                                    retry_after_s=3.0)
            first = asyncio.ensure_future(http_request(
                app.port, "/explain", "POST", body=explain_body))
            while not started.is_set():
                await asyncio.sleep(0.005)
            second = asyncio.ensure_future(http_request(
                app.port, "/explain", "POST",
                body={**explain_body, "target": 4}))
            # Wait for the second request to occupy the queue slot.
            while app.coalescer.queue_depth() < 1:
                await asyncio.sleep(0.005)
            rejected = await http_request(
                app.port, "/explain", "POST",
                body={**explain_body, "target": 5})
            release.set()
            ok = await asyncio.gather(first, second)
            metrics = (await http_request(app.port, "/metrics"))[1]["serve"]
            await app.shutdown()
            return rejected, ok, metrics

        rejected, ok, metrics = run(main())
        assert rejected[0] == 429
        assert rejected[2]["retry-after"] == "3"
        assert [r[0] for r in ok] == [200, 200]
        assert metrics["rejected_backpressure"] == 1

    def test_504_on_budget_exceeded(self, explain_body):
        release = threading.Event()

        def slow(requests):
            assert release.wait(timeout=10.0)
            return echo_runner(requests)

        async def main():
            app = await started_app(batch_runner=slow, max_linger_ms=0.0)
            status, payload, _ = await http_request(
                app.port, "/explain", "POST",
                body={**explain_body, "timeout": 0.05})
            release.set()
            metrics = (await http_request(app.port, "/metrics"))[1]["serve"]
            await app.shutdown()
            return status, payload, metrics

        status, payload, metrics = run(main())
        assert status == 504
        assert "budget" in payload["error"]["message"]
        assert metrics["timeouts"] == 1

    def test_runtime_error_maps_to_400(self, explain_body):
        def failing(requests):
            from repro.errors import ServeError
            return [ServeError("target 999 out of range") for _ in requests]

        async def main():
            app = await started_app(batch_runner=failing, max_linger_ms=0.0)
            status, payload, _ = await http_request(
                app.port, "/explain", "POST",
                body={**explain_body, "target": 999})
            await app.shutdown()
            return status, payload

        status, payload = run(main())
        assert status == 400
        assert "out of range" in payload["error"]["message"]


class TestServingParity:
    """Coalesced responses must be byte-identical to the serial path."""

    PARAMS = {"samples": 2, "finetune_epochs": 0}

    def _serial_bytes(self, model, dataset, target):
        explainer = make_explainer("flowx", model, **self.PARAMS)
        batch = explain_instances(explainer, [Instance(dataset.graph, target)],
                                  mode="factual", raise_on_error=True)
        payload, _, _ = wire_explanation(batch.explanations[0])
        return canonical_bytes(payload)

    def test_coalesced_explanations_match_serial(
            self, node_model, mini_ba_shapes, good_motif_node):
        pool = ModelPool()
        pool.put(("ba_shapes", "gcn", None, 0), node_model, mini_ba_shapes)
        runtime = ExplainRuntime(pool)
        targets = [good_motif_node, 0]

        async def main():
            app = await started_app(batch_runner=runtime, max_batch=8,
                                    max_linger_ms=25.0)
            bodies = [{"dataset": "ba_shapes", "model": "gcn",
                       "explainer": "flowx", "target": targets[i % 2],
                       "params": self.PARAMS} for i in range(8)]
            responses = await asyncio.gather(*[
                http_request(app.port, "/explain", "POST", body=b)
                for b in bodies])
            metrics = (await http_request(app.port, "/metrics"))[1]["serve"]
            await app.shutdown()
            return responses, metrics

        responses, metrics = run(main())
        assert all(status == 200 for status, _, _ in responses)
        serial = {t: self._serial_bytes(node_model, mini_ba_shapes, t)
                  for t in targets}
        for i, (_, payload, _) in enumerate(responses):
            assert canonical_bytes(payload["explanation"]) == \
                serial[targets[i % 2]]
        # 8 requests over 2 unique dedup keys: at least 6 joined inflight
        # computations, and everything ran in coalesced batches.
        assert metrics["deduped_requests"] >= 4
        assert metrics["batches_total"] >= 1
        assert metrics["batched_requests"] <= 4


class TestSampledRequests:
    """The ``"sampled": true`` request field routes through the sampled
    runtime and answers with the same scores plus extraction metadata."""

    def _app_setup(self, node_model, mini_ba_shapes):
        pool = ModelPool()
        pool.put(("ba_shapes", "gcn", None, 0), node_model, mini_ba_shapes)
        return ExplainRuntime(pool)

    def test_sampled_explanation_over_http(self, node_model, mini_ba_shapes,
                                           good_motif_node):
        runtime = self._app_setup(node_model, mini_ba_shapes)
        base = {"dataset": "ba_shapes", "model": "gcn",
                "explainer": "gradcam", "target": {"node": good_motif_node}}

        async def main():
            app = await started_app(batch_runner=runtime, max_batch=4)
            full = await http_request(app.port, "/explain", "POST", body=base)
            sampled = await http_request(app.port, "/explain", "POST",
                                         body={**base, "sampled": True})
            await app.shutdown()
            return full, sampled

        (full_status, full_payload, _), (s_status, s_payload, _) = run(main())
        assert full_status == 200 and s_status == 200
        full_exp = full_payload["explanation"]
        s_exp = s_payload["explanation"]
        assert "sampled" not in full_exp["meta"]
        meta = s_exp["meta"]["sampled"]
        assert meta["targets"] == [good_motif_node]
        assert meta["num_nodes"] <= mini_ba_shapes.graph.num_nodes
        assert s_exp["edge_scores"] == full_exp["edge_scores"]
        assert s_exp["target"] == full_exp["target"] == good_motif_node

    def test_sampled_rejected_for_graph_tasks(self, graph_model, mini_mutag):
        pool = ModelPool()
        pool.put(("mutag", "gin", None, 0), graph_model, mini_mutag)
        runtime = ExplainRuntime(pool)

        async def main():
            app = await started_app(batch_runner=runtime)
            status, payload, _ = await http_request(
                app.port, "/explain", "POST",
                body={"dataset": "mutag", "model": "gin",
                      "explainer": "gradcam", "target": {"graph": 0},
                      "sampled": True})
            await app.shutdown()
            return status, payload

        status, payload = run(main())
        assert status == 400
        assert "graph task" in payload["error"]["message"]


def test_embedded_coalescer_parity_without_http(node_model, mini_ba_shapes,
                                                good_motif_node):
    """The coalescer + runtime stack alone preserves serial semantics."""
    pool = ModelPool()
    pool.put(("ba_shapes", "gcn", None, 0), node_model, mini_ba_shapes)
    runtime = ExplainRuntime(pool)
    params = {"samples": 2, "finetune_epochs": 0}

    from .conftest import make_request

    async def main():
        coalescer = Coalescer(runtime, max_batch=4, max_linger_ms=25.0)
        futures = [coalescer.submit(
            make_request(target=good_motif_node, **params))[0]
            for _ in range(3)]
        results = await asyncio.gather(*futures)
        await coalescer.shutdown()
        return results

    results = asyncio.run(main())
    explainer = make_explainer("flowx", node_model, **params)
    batch = explain_instances(
        explainer, [Instance(mini_ba_shapes.graph, good_motif_node)],
        mode="factual", raise_on_error=True)
    expected, _, _ = wire_explanation(batch.explanations[0])
    for result in results:
        assert canonical_bytes(result["explanation"]) == \
            canonical_bytes(expected)
