"""Coalescer mechanics: batching, dedup, backpressure, graceful drain.

All tests inject a controllable ``batch_runner`` so behaviour is
deterministic — no numerics, no HTTP.
"""

import asyncio
import threading

import pytest

from repro.errors import ServeError
from repro.serve import BackpressureError, Coalescer, DrainingError

from .conftest import echo_runner, make_request, poll


def run(coro):
    return asyncio.run(coro)


class RecordingRunner:
    """Echo runner that remembers every batch it executed."""

    def __init__(self):
        self.batches = []

    def __call__(self, requests):
        self.batches.append([r.target for r in requests])
        return echo_runner(requests)


class GatedRunner(RecordingRunner):
    """Runner that blocks until the test releases it."""

    def __init__(self):
        super().__init__()
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, requests):
        self.started.set()
        assert self.release.wait(timeout=10.0)
        return super().__call__(requests)


class TestBatching:
    def test_concurrent_requests_share_one_batch(self):
        async def main():
            runner = RecordingRunner()
            coalescer = Coalescer(runner, max_batch=8, max_linger_ms=50.0)
            futures = [coalescer.submit(make_request(target=t))[0]
                       for t in range(4)]
            results = await asyncio.gather(*futures)
            await coalescer.shutdown()
            return runner, results

        runner, results = run(main())
        assert runner.batches == [[0, 1, 2, 3]]
        assert all(r["batch_size"] == 4 for r in results)

    def test_max_batch_splits(self):
        async def main():
            runner = RecordingRunner()
            coalescer = Coalescer(runner, max_batch=2, max_linger_ms=50.0)
            futures = [coalescer.submit(make_request(target=t))[0]
                       for t in range(5)]
            await asyncio.gather(*futures)
            await coalescer.shutdown()
            return runner

        runner = run(main())
        assert [len(b) for b in runner.batches] == [2, 2, 1]

    def test_distinct_batch_keys_do_not_mix(self):
        async def main():
            runner = RecordingRunner()
            coalescer = Coalescer(runner, max_batch=8, max_linger_ms=50.0)
            fa = coalescer.submit(make_request(target=0, explainer="flowx"))[0]
            fb = coalescer.submit(make_request(target=0, explainer="gradcam"))[0]
            ra, rb = await asyncio.gather(fa, fb)
            await coalescer.shutdown()
            return ra, rb

        ra, rb = run(main())
        assert ra["batch_size"] == 1 and rb["batch_size"] == 1
        assert ra["explanation"]["explainer"] == "flowx"
        assert rb["explanation"]["explainer"] == "gradcam"

    def test_on_batch_hook_fires(self):
        seen = []

        async def main():
            coalescer = Coalescer(
                echo_runner, max_batch=8, max_linger_ms=20.0,
                on_batch=lambda key, size, seconds: seen.append(size))
            futures = [coalescer.submit(make_request(target=t))[0]
                       for t in range(3)]
            await asyncio.gather(*futures)
            await coalescer.shutdown()

        run(main())
        assert seen == [3]


class TestDedup:
    def test_identical_requests_join_inflight(self):
        async def main():
            runner = GatedRunner()
            coalescer = Coalescer(runner, max_batch=4, max_linger_ms=0.0)
            f1, joined1 = coalescer.submit(make_request(target=5))
            await poll(runner.started.is_set)
            f2, joined2 = coalescer.submit(make_request(target=5))
            runner.release.set()
            r1, r2 = await asyncio.gather(f1, f2)
            await coalescer.shutdown()
            return runner, joined1, joined2, r1, r2

        runner, joined1, joined2, r1, r2 = run(main())
        assert (joined1, joined2) == (False, True)
        assert r1 is r2  # one computation, shared result
        assert runner.batches == [[5]]

    def test_coalesce_off_disables_dedup_and_batching(self):
        async def main():
            runner = RecordingRunner()
            coalescer = Coalescer(runner, max_batch=8, max_linger_ms=50.0,
                                  coalesce=False)
            futures = [coalescer.submit(make_request(target=5))
                       for _ in range(3)]
            assert not any(joined for _, joined in futures)
            await asyncio.gather(*[f for f, _ in futures])
            await coalescer.shutdown()
            return runner

        runner = run(main())
        assert runner.batches == [[5], [5], [5]]


class TestBackpressure:
    def test_full_queue_raises(self):
        async def main():
            runner = GatedRunner()
            coalescer = Coalescer(runner, max_batch=1, max_linger_ms=0.0,
                                  queue_limit=2, retry_after_s=2.0)
            first = coalescer.submit(make_request(target=0))[0]
            await poll(runner.started.is_set)  # target 0 now executing
            queued = [coalescer.submit(make_request(target=t))[0]
                      for t in (1, 2)]
            with pytest.raises(BackpressureError) as excinfo:
                coalescer.submit(make_request(target=3))
            assert excinfo.value.retry_after_s == 2.0
            runner.release.set()
            await asyncio.gather(first, *queued)
            await coalescer.shutdown()

        run(main())

    def test_duplicate_joins_even_when_queue_full(self):
        async def main():
            runner = GatedRunner()
            coalescer = Coalescer(runner, max_batch=1, max_linger_ms=0.0,
                                  queue_limit=1)
            first = coalescer.submit(make_request(target=0))[0]
            await poll(runner.started.is_set)
            queued = coalescer.submit(make_request(target=1))[0]
            joined, was_joined = coalescer.submit(make_request(target=1))
            assert was_joined and joined is queued
            runner.release.set()
            await asyncio.gather(first, queued)
            await coalescer.shutdown()

        run(main())


class TestFailures:
    def test_per_request_exception_fails_only_its_future(self):
        def runner(requests):
            return [ValueError("bad instance") if r.target == 1
                    else echo_runner([r])[0] for r in requests]

        async def main():
            coalescer = Coalescer(runner, max_batch=4, max_linger_ms=20.0)
            ok = coalescer.submit(make_request(target=0))[0]
            bad = coalescer.submit(make_request(target=1))[0]
            result = await ok
            with pytest.raises(ValueError, match="bad instance"):
                await bad
            await coalescer.shutdown()
            return result

        assert run(main())["batch_size"] == 2

    def test_runner_crash_fails_whole_batch(self):
        def runner(requests):
            raise RuntimeError("model load failed")

        async def main():
            coalescer = Coalescer(runner, max_batch=4, max_linger_ms=10.0)
            futures = [coalescer.submit(make_request(target=t))[0]
                       for t in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="model load failed"):
                    await future
            await coalescer.shutdown()

        run(main())

    def test_result_length_mismatch_fails_batch(self):
        async def main():
            coalescer = Coalescer(lambda requests: [], max_batch=2,
                                  max_linger_ms=0.0)
            future = coalescer.submit(make_request(target=0))[0]
            with pytest.raises(ServeError, match="0 results for 1 requests"):
                await future
            await coalescer.shutdown()

        run(main())

    def test_bad_config_rejected(self):
        with pytest.raises(ServeError, match="max_batch"):
            Coalescer(echo_runner, max_batch=0)
        with pytest.raises(ServeError, match="queue_limit"):
            Coalescer(echo_runner, queue_limit=0)


class TestShutdown:
    def test_inflight_completes_queued_fails(self):
        async def main():
            runner = GatedRunner()
            coalescer = Coalescer(runner, max_batch=1, max_linger_ms=0.0)
            inflight = coalescer.submit(make_request(target=0))[0]
            await poll(runner.started.is_set)
            queued = coalescer.submit(make_request(target=1))[0]
            shutdown = asyncio.ensure_future(coalescer.shutdown())
            await asyncio.sleep(0.01)
            runner.release.set()
            await shutdown
            result = await inflight
            with pytest.raises(DrainingError):
                await queued
            with pytest.raises(DrainingError):
                coalescer.submit(make_request(target=2))
            return result, runner

        result, runner = run(main())
        assert result["explanation"]["target"] == 0
        assert runner.batches == [[0]]  # target 1 never executed

    def test_shutdown_idempotent_and_task_clean(self):
        async def main():
            coalescer = Coalescer(echo_runner, max_batch=2, max_linger_ms=5.0)
            future = coalescer.submit(make_request(target=0))[0]
            await future
            await coalescer.shutdown()
            await coalescer.shutdown()
            pending = [t for t in asyncio.all_tasks()
                       if t is not asyncio.current_task()]
            assert pending == []

        run(main())
