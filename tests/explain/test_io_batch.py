"""Explanation serialization and batch explanation."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.eval import Instance
from repro.explain import (
    Explanation,
    RandomExplainer,
    explain_instances,
    load_explanation,
    make_explainer,
    save_explanation,
)


class TestExplanationIO:
    def test_roundtrip_flow_explanation(self, node_model, mini_ba_shapes,
                                        good_motif_node, tmp_path):
        e = make_explainer("revelio", node_model, epochs=10).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        path = tmp_path / "e.npz"
        save_explanation(e, path)
        back = load_explanation(path)
        assert np.allclose(back.edge_scores, e.edge_scores)
        assert np.allclose(back.flow_scores, e.flow_scores)
        assert np.array_equal(back.flow_index.nodes, e.flow_index.nodes)
        assert back.method == "revelio"
        assert back.target == good_motif_node
        assert np.array_equal(back.context_edge_positions, e.context_edge_positions)

    def test_roundtrip_edge_explanation(self, graph_model, mini_mutag, tmp_path):
        e = RandomExplainer(graph_model, seed=0).explain(mini_mutag.graphs[0])
        save_explanation(e, tmp_path / "e.npz")
        back = load_explanation(tmp_path / "e.npz")
        assert back.flow_scores is None
        assert back.flow_index is None
        assert np.allclose(back.edge_scores, e.edge_scores)

    def test_top_flows_work_after_reload(self, node_model, mini_ba_shapes,
                                         good_motif_node, tmp_path):
        e = make_explainer("revelio", node_model, epochs=10).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        save_explanation(e, tmp_path / "e.npz")
        back = load_explanation(tmp_path / "e.npz")
        assert back.top_flows(3) == e.top_flows(3)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExplainerError):
            load_explanation(tmp_path / "nope.npz")

    def test_scalar_meta_preserved(self, graph_model, mini_mutag, tmp_path):
        e = make_explainer("gnnexplainer", graph_model, epochs=5).explain(
            mini_mutag.graphs[0])
        save_explanation(e, tmp_path / "e.npz")
        back = load_explanation(tmp_path / "e.npz")
        assert back.meta["params"]["epochs"] == 5


class TestBatchExplain:
    def test_all_instances_explained(self, graph_model, mini_mutag):
        instances = [Instance(g) for g in mini_mutag.graphs[:4]]
        result = explain_instances(RandomExplainer(graph_model, seed=0), instances)
        assert result.num_succeeded == 4
        assert result.num_failed == 0

    def test_progress_callback(self, graph_model, mini_mutag):
        instances = [Instance(g) for g in mini_mutag.graphs[:3]]
        seen = []
        explain_instances(RandomExplainer(graph_model, seed=0), instances,
                          progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_save_dir(self, graph_model, mini_mutag, tmp_path):
        instances = [Instance(g) for g in mini_mutag.graphs[:2]]
        explain_instances(RandomExplainer(graph_model, seed=0), instances,
                          save_dir=tmp_path / "out")
        files = sorted((tmp_path / "out").glob("*.npz"))
        assert len(files) == 2
        assert load_explanation(files[0]).method == "random"

    def test_failure_captured(self, node_model, mini_ba_shapes):
        from repro.core import Revelio

        # max_flows=1 forces a FlowError on real instances
        explainer = Revelio(node_model, epochs=2, max_flows=1)
        instances = [Instance(mini_ba_shapes.graph, int(mini_ba_shapes.motif_nodes[0]))]
        result = explain_instances(explainer, instances)
        assert result.num_failed == 1
        assert "FlowError" in result.failures[0][1]

    def test_non_repro_exception_captured(self, graph_model, mini_mutag):
        """Stray numpy-level errors must not kill the batch (only the instance)."""

        class BlowingUpExplainer(RandomExplainer):
            calls = 0

            def explain(self, graph, target=None, mode="factual"):
                BlowingUpExplainer.calls += 1
                if BlowingUpExplainer.calls == 1:
                    raise FloatingPointError("overflow encountered in exp")
                return super().explain(graph, target=target, mode=mode)

        explainer = BlowingUpExplainer(graph_model, seed=0)
        instances = [Instance(g) for g in mini_mutag.graphs[:3]]
        result = explain_instances(explainer, instances)
        assert result.num_succeeded == 2
        assert result.num_failed == 1
        idx, message = result.failures[0]
        assert idx == 0
        assert message.startswith("FloatingPointError: overflow")
        assert "Traceback" in message  # truncated traceback recorded

    def test_non_repro_exception_raise_on_error(self, graph_model, mini_mutag):
        class BlowingUpExplainer(RandomExplainer):
            def explain(self, graph, target=None, mode="factual"):
                raise ValueError("bad value from numpy")

        instances = [Instance(mini_mutag.graphs[0])]
        with pytest.raises(ValueError):
            explain_instances(BlowingUpExplainer(graph_model, seed=0), instances,
                              raise_on_error=True)

    def test_raise_on_error(self, node_model, mini_ba_shapes):
        from repro.core import Revelio
        from repro.errors import FlowError

        explainer = Revelio(node_model, epochs=2, max_flows=1)
        instances = [Instance(mini_ba_shapes.graph, int(mini_ba_shapes.motif_nodes[0]))]
        with pytest.raises(FlowError):
            explain_instances(explainer, instances, raise_on_error=True)

    def test_repr(self, graph_model, mini_mutag):
        result = explain_instances(RandomExplainer(graph_model, seed=0),
                                   [Instance(mini_mutag.graphs[0])])
        assert "succeeded=1" in repr(result)


class TestLayerEdgeScores:
    def test_flow_method_layer_extraction(self, node_model, mini_ba_shapes,
                                          good_motif_node):
        e = make_explainer("revelio", node_model, epochs=10).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        for l in (1, 2, 3):
            per_layer = e.edge_scores_at_layer(l)
            assert per_layer.shape == (e.flow_index.num_edges,)
            assert np.isfinite(per_layer).all()

    def test_bad_layer(self, node_model, mini_ba_shapes, good_motif_node):
        e = make_explainer("revelio", node_model, epochs=5).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        with pytest.raises(ExplainerError):
            e.edge_scores_at_layer(0)
        with pytest.raises(ExplainerError):
            e.edge_scores_at_layer(9)

    def test_edge_method_has_no_layers(self, graph_model, mini_mutag):
        e = RandomExplainer(graph_model, seed=0).explain(mini_mutag.graphs[0])
        with pytest.raises(ExplainerError):
            e.edge_scores_at_layer(1)

    def test_graphmask_layer_extraction(self, graph_model, mini_mutag):
        from repro.explain import GraphMask

        gm = GraphMask(graph_model, epochs=5)
        gm.fit(gm.prepare_instances(mini_mutag.graphs[:2]))
        g = mini_mutag.graphs[3]
        e = gm.explain(g)
        per_layer = e.edge_scores_at_layer(1)
        assert per_layer.shape == (g.num_edges,)

    # The three mapping branches, pinned on synthetic explanations: a
    # flow_index truncates to its edge count, context_edge_positions
    # truncate to the context's data edges, and an unmappable shape
    # mismatch raises instead of silently truncating.
    def test_flow_index_branch_truncates_to_flow_edges(self):
        from repro.flows import FlowIndex

        fi = FlowIndex(nodes=np.zeros((1, 3), dtype=np.int64),
                       layer_edges=np.zeros((1, 2), dtype=np.int64),
                       num_layers=2, num_edges=4, num_nodes=3, target=0)
        e = Explanation(edge_scores=np.arange(4, dtype=float),
                        predicted_class=0, method="synthetic",
                        layer_edge_scores=np.arange(14, dtype=float).reshape(2, 7),
                        flow_index=fi)
        np.testing.assert_array_equal(e.edge_scores_at_layer(1),
                                      [0.0, 1.0, 2.0, 3.0])

    def test_context_positions_branch(self):
        e = Explanation(edge_scores=np.arange(10, dtype=float),
                        predicted_class=0, method="synthetic",
                        layer_edge_scores=np.arange(6, dtype=float).reshape(2, 3),
                        context_edge_positions=np.array([4, 7]))
        np.testing.assert_array_equal(e.edge_scores_at_layer(2), [3.0, 4.0])

    def test_unmappable_shape_mismatch_raises(self):
        e = Explanation(edge_scores=np.arange(10, dtype=float),
                        predicted_class=0, method="synthetic",
                        layer_edge_scores=np.arange(6, dtype=float).reshape(2, 3))
        with pytest.raises(ExplainerError, match="layer scores cover 3 edges"):
            e.edge_scores_at_layer(1)
