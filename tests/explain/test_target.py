"""ExplainTarget: the single target vocabulary of the explanation API."""

import pytest

from repro.errors import ExplainerError
from repro.explain import ExplainTarget, as_node_id


class TestConstructors:
    def test_node(self):
        t = ExplainTarget.node(412)
        assert t.kind == "node" and t.ids == (412,)
        assert t.node_id == 412

    def test_link(self):
        t = ExplainTarget.link(3, 7)
        assert t.kind == "link" and t.ids == (3, 7)
        assert t.endpoints == (3, 7)

    def test_graph(self):
        assert ExplainTarget.graph().graph_index == 0
        assert ExplainTarget.graph(5).graph_index == 5

    def test_numpy_integers_accepted(self):
        import numpy as np

        assert ExplainTarget.node(np.int64(9)).node_id == 9

    @pytest.mark.parametrize("bad", [-1, 1.5, "3", True, None])
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(ExplainerError):
            ExplainTarget.node(bad)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExplainerError, match="unknown target kind"):
            ExplainTarget("edge", (1,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ExplainerError):
            ExplainTarget("link", (1,))
        with pytest.raises(ExplainerError):
            ExplainTarget("node", (1, 2))

    def test_frozen_and_hashable(self):
        t = ExplainTarget.node(4)
        assert t == ExplainTarget.node(4)
        assert hash(t) == hash(ExplainTarget.node(4))
        with pytest.raises(AttributeError):
            t.kind = "graph"

    def test_wrong_kind_views_raise(self):
        with pytest.raises(ExplainerError):
            ExplainTarget.link(1, 2).node_id
        with pytest.raises(ExplainerError):
            ExplainTarget.node(1).endpoints
        with pytest.raises(ExplainerError):
            ExplainTarget.node(1).graph_index

    def test_describe(self):
        assert ExplainTarget.node(412).describe() == "node:412"
        assert str(ExplainTarget.link(3, 7)) == "link:3-7"


class TestWireCodec:
    @pytest.mark.parametrize("target", [
        ExplainTarget.node(0), ExplainTarget.link(3, 7), ExplainTarget.graph(2),
    ])
    def test_round_trip(self, target):
        assert ExplainTarget.from_wire(target.to_wire()) == target

    def test_shorthand_forms(self):
        assert ExplainTarget.from_wire({"node": 4}) == ExplainTarget.node(4)
        assert ExplainTarget.from_wire({"link": [3, 7]}) == ExplainTarget.link(3, 7)
        assert ExplainTarget.from_wire({"graph": 1}) == ExplainTarget.graph(1)

    def test_passthrough(self):
        t = ExplainTarget.node(1)
        assert ExplainTarget.from_wire(t) is t

    @pytest.mark.parametrize("bad", [
        7, [1, 2], {"node": 1, "link": [2, 3]}, {"edge": 4},
        {"kind": "node", "ids": 3}, {"link": [1]}, {"link": 5},
    ])
    def test_malformed_wire_rejected(self, bad):
        with pytest.raises(ExplainerError):
            ExplainTarget.from_wire(bad)


class TestLegacyCoercion:
    def test_resolve_silent(self, recwarn):
        assert ExplainTarget.resolve(4, task="node") == ExplainTarget.node(4)
        assert ExplainTarget.resolve(4, task="graph") == ExplainTarget.graph(4)
        assert ExplainTarget.resolve((3, 7)) == ExplainTarget.link(3, 7)
        assert ExplainTarget.resolve(None) is None
        assert len([w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]) == 0

    def test_coerce_warns_on_bare_int(self):
        with pytest.warns(DeprecationWarning, match=r"ExplainTarget\.node\(4\)"):
            assert ExplainTarget.coerce(4, task="node") == ExplainTarget.node(4)

    def test_coerce_warns_on_tuple(self):
        with pytest.warns(DeprecationWarning, match=r"ExplainTarget\.link"):
            assert ExplainTarget.coerce((3, 7)) == ExplainTarget.link(3, 7)

    def test_coerce_names_the_entry_point(self):
        with pytest.warns(DeprecationWarning, match="my_api"):
            ExplainTarget.coerce(1, task="graph", where="my_api")

    def test_coerce_passthrough_is_silent(self, recwarn):
        t = ExplainTarget.node(2)
        assert ExplainTarget.coerce(t) is t
        assert ExplainTarget.coerce(None) is None
        assert len([w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]) == 0


class TestAsNodeId:
    def test_shapes(self):
        assert as_node_id(None) is None
        assert as_node_id(7) == 7
        assert as_node_id(ExplainTarget.node(7)) == 7
        assert as_node_id(ExplainTarget.graph(3)) is None
        assert as_node_id(ExplainTarget.link(1, 2)) is None


class TestExplainerEntryPoint:
    def test_bare_int_target_warns_and_matches(self, node_model, mini_ba_shapes,
                                               good_motif_node):
        from repro.explain import make_explainer

        graph = mini_ba_shapes.graph
        typed = make_explainer("gradcam", node_model).explain(
            graph, ExplainTarget.node(good_motif_node))
        with pytest.warns(DeprecationWarning, match="gradcam.explain"):
            legacy = make_explainer("gradcam", node_model).explain(
                graph, good_motif_node)
        assert (typed.edge_scores == legacy.edge_scores).all()
        assert typed.target == legacy.target == good_motif_node

    def test_graph_task_rejects_node_target(self, graph_model, mini_mutag):
        from repro.explain import make_explainer

        with pytest.raises(ExplainerError, match="graph"):
            make_explainer("gradcam", graph_model).explain(
                mini_mutag.graphs[0], ExplainTarget.node(0))
