"""Lossless JSON round-trip of explanations (the serving wire format).

Every explainer result shape — edge-only, layer-edge, flow-scored with a
FlowIndex, node-task with context arrays, graph-task — must survive
``explanation_to_jsonable`` → ``json.dumps`` → ``json.loads`` →
``explanation_from_jsonable`` exactly, including array dtypes and the
reserved ``meta`` schema.
"""

import json

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explain import make_explainer
from repro.explain.base import Explanation
from repro.explain.io import (
    JSON_SCHEMA_VERSION,
    explanation_from_jsonable,
    explanation_to_jsonable,
)


def roundtrip(explanation):
    payload = json.loads(json.dumps(explanation_to_jsonable(explanation)))
    return explanation_from_jsonable(payload)


def assert_array_equal_typed(left, right, where):
    if left is None or right is None:
        assert left is None and right is None, where
        return
    assert isinstance(right, np.ndarray), where
    assert left.dtype == right.dtype, f"{where}: {left.dtype} != {right.dtype}"
    assert left.shape == right.shape, where
    np.testing.assert_array_equal(left, right, err_msg=where)


def assert_value_equal(lv, rv, where):
    if isinstance(lv, np.ndarray):
        assert_array_equal_typed(lv, rv, where)
    elif isinstance(lv, dict):
        assert set(lv) == set(rv), where
        for key in lv:
            assert_value_equal(lv[key], rv[key], f"{where}.{key}")
    elif isinstance(lv, (list, tuple)):  # tuples normalize to lists
        assert isinstance(rv, list) and len(lv) == len(rv), where
        for i, (le, re) in enumerate(zip(lv, rv)):
            assert_value_equal(le, re, f"{where}[{i}]")
    else:
        assert lv == rv, where


def assert_meta_equal(left, right, where="meta"):
    assert_value_equal(left, right, where)


def assert_explanations_equal(original, restored):
    assert restored.method == original.method
    assert restored.mode == original.mode
    assert restored.target == original.target
    assert restored.predicted_class == original.predicted_class
    for field in ("edge_scores", "layer_edge_scores", "flow_scores",
                  "context_node_ids", "context_edge_positions"):
        assert_array_equal_typed(getattr(original, field),
                                 getattr(restored, field), field)
    if original.flow_index is None:
        assert restored.flow_index is None
    else:
        fi, ri = original.flow_index, restored.flow_index
        assert_array_equal_typed(fi.nodes, ri.nodes, "flow_index.nodes")
        assert_array_equal_typed(fi.layer_edges, ri.layer_edges,
                                 "flow_index.layer_edges")
        assert (fi.num_layers, fi.num_edges, fi.num_nodes, fi.target) == \
            (ri.num_layers, ri.num_edges, ri.num_nodes, ri.target)
    assert_meta_equal(original.meta, restored.meta)


#: (registry name, fast kwargs) — one entry per distinct result shape.
NODE_EXPLAINERS = [
    ("gradcam", {}),
    ("random", {}),
    ("flowx", {"samples": 2, "finetune_epochs": 0}),
    ("gnn_lrp", {}),
    ("revelio", {"epochs": 2}),
]


class TestExplainerRoundTrips:
    @pytest.mark.parametrize("name,kwargs", NODE_EXPLAINERS,
                             ids=[n for n, _ in NODE_EXPLAINERS])
    def test_node_task_shapes(self, node_model, mini_ba_shapes,
                              good_motif_node, name, kwargs):
        explainer = make_explainer(name, node_model, **kwargs)
        explanation = explainer.explain(mini_ba_shapes.graph,
                                        target=good_motif_node)
        assert_explanations_equal(explanation, roundtrip(explanation))

    def test_graph_task_shape(self, graph_model, mini_mutag):
        explainer = make_explainer("gradcam", graph_model)
        explanation = explainer.explain(mini_mutag.graphs[0])
        assert explanation.target is None
        assert_explanations_equal(explanation, roundtrip(explanation))

    def test_counterfactual_mode(self, node_model, mini_ba_shapes,
                                 good_motif_node):
        explainer = make_explainer("random", node_model)
        explanation = explainer.explain(mini_ba_shapes.graph,
                                        target=good_motif_node,
                                        mode="counterfactual")
        restored = roundtrip(explanation)
        assert restored.mode == "counterfactual"
        assert_explanations_equal(explanation, restored)


class TestSyntheticShapes:
    def _base(self, **overrides):
        fields = dict(
            edge_scores=np.array([0.5, 0.125, 0.25]),
            predicted_class=2, method="synthetic", mode="factual", target=7,
        )
        fields.update(overrides)
        return Explanation(**fields)

    def test_meta_with_arrays_and_nesting(self):
        explanation = self._base(meta={
            "params": {"epochs": 5, "lr": 0.01},
            "perf": {"explain_seconds": 0.25},
            "trace_id": "deadbeef",
            "layer_weights": np.arange(6, dtype=np.float32).reshape(2, 3),
            "selected": {"flows": np.array([3, 1, 4], dtype=np.int64),
                         "note": "nested"},
            "history": [np.array([1.0, 0.5]), {"epoch": 1}, 3, None],
        })
        restored = roundtrip(explanation)
        assert restored.meta["layer_weights"].dtype == np.float32
        assert restored.meta["selected"]["flows"].dtype == np.int64
        assert_explanations_equal(explanation, restored)

    def test_exact_float64_bits_survive(self):
        values = np.array([1 / 3, np.pi, 1e-300, -0.0, 7e100])
        restored = roundtrip(self._base(edge_scores=values))
        assert restored.edge_scores.tobytes() == values.tobytes()

    def test_numpy_scalar_meta_becomes_python_scalar(self):
        restored = roundtrip(self._base(
            meta={"alpha": np.float64(0.5), "k": np.int64(3)}))
        assert restored.meta == {"alpha": 0.5, "k": 3}
        assert isinstance(restored.meta["k"], int)

    def test_unencodable_meta_raises(self):
        explanation = self._base(meta={"model": object()})
        with pytest.raises(ExplainerError, match="meta.model"):
            explanation_to_jsonable(explanation)


class TestWirePayloadValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(ExplainerError, match="must be an object"):
            explanation_from_jsonable("nope")

    def test_missing_required_keys_named(self):
        with pytest.raises(ExplainerError, match="edge_scores"):
            explanation_from_jsonable({"method": "x", "mode": "factual",
                                       "predicted_class": 0})

    def test_schema_version_mismatch_rejected(self):
        payload = explanation_to_jsonable(Explanation(
            edge_scores=np.array([1.0]), predicted_class=0,
            method="x", mode="factual", target=None))
        payload["schema"] = JSON_SCHEMA_VERSION + 1
        with pytest.raises(ExplainerError, match="schema"):
            explanation_from_jsonable(payload)

    def test_non_array_field_rejected(self):
        payload = explanation_to_jsonable(Explanation(
            edge_scores=np.array([1.0]), predicted_class=0,
            method="x", mode="factual", target=None))
        payload["edge_scores"] = [1.0]
        with pytest.raises(ExplainerError, match="not an encoded array"):
            explanation_from_jsonable(payload)
