"""FlowX and GNN-LRP: flow-based baselines."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explain import FlowX, GNNLRP
from repro.explain.flow_common import flow_scores_to_edge_scores, masked_probability, sigmoid
from repro.flows import enumerate_flows


class TestFlowCommon:
    def test_sigmoid_stable(self):
        out = sigmoid(np.array([-800.0, 0.0, 800.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_masked_probability_full_mask_matches_plain(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        L = graph_model.num_layers
        masks = np.ones((L, g.num_edges + g.num_nodes))
        c = int(graph_model.predict(g)[0])
        p_masked = masked_probability(graph_model, g, masks, c, None)
        p_plain = float(graph_model.predict_proba(g)[0][c])
        assert p_masked == pytest.approx(p_plain)

    def test_flow_scores_to_edge_scores_shape(self, triangle_graph):
        fi = enumerate_flows(triangle_graph, 2, target=1)
        scores = np.random.default_rng(0).normal(size=fi.num_flows)
        edge_scores = flow_scores_to_edge_scores(fi, scores)
        assert edge_scores.shape == (triangle_graph.num_edges,)

    def test_unused_edges_score_zero(self, path_graph):
        fi = enumerate_flows(path_graph, 1, target=1)
        # only edge 0->1 carries flows at depth 1
        edge_scores = flow_scores_to_edge_scores(fi, np.ones(fi.num_flows))
        assert edge_scores[1] == 0.0  # edge 1->2 unused for target 1
        assert edge_scores[0] > 0.0


class TestFlowX:
    @pytest.fixture
    def flowx(self, node_model):
        return FlowX(node_model, samples=2, finetune_epochs=15, seed=0)

    def test_node_explanation(self, flowx, mini_ba_shapes, good_motif_node):
        e = flowx.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.method == "flowx"
        assert e.flow_scores is not None
        assert e.flow_index is not None
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)

    def test_graph_explanation(self, graph_model, mini_mutag):
        fx = FlowX(graph_model, samples=2, finetune_epochs=10, seed=0)
        g = mini_mutag.graphs[0]
        e = fx.explain(g)
        assert e.flow_scores.shape[0] == e.flow_index.num_flows

    def test_deterministic(self, node_model, mini_ba_shapes, good_motif_node):
        e1 = FlowX(node_model, samples=2, finetune_epochs=5, seed=1).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        e2 = FlowX(node_model, samples=2, finetune_epochs=5, seed=1).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_counterfactual_negates(self, node_model, mini_ba_shapes, good_motif_node):
        e = FlowX(node_model, samples=2, finetune_epochs=5, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node, mode="counterfactual")
        assert e.mode == "counterfactual"
        assert np.isfinite(e.flow_scores).all()

    def test_edges_per_sample_bound(self, node_model, mini_ba_shapes, good_motif_node):
        fx = FlowX(node_model, samples=2, edges_per_sample=5, finetune_epochs=5, seed=0)
        e = fx.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert np.isfinite(e.edge_scores).all()

    def test_meta_records_flow_count(self, flowx, mini_ba_shapes, good_motif_node):
        e = flowx.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.meta["num_flows"] == e.flow_index.num_flows


class TestGNNLRP:
    def test_rejects_gat(self, mini_ba_shapes):
        from repro.nn import build_model

        gat = build_model("gat", "node", mini_ba_shapes.num_features,
                          mini_ba_shapes.num_classes, rng=0)
        with pytest.raises(ExplainerError):
            GNNLRP(gat)

    def test_node_explanation(self, node_model, mini_ba_shapes, good_motif_node):
        e = GNNLRP(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.method == "gnn_lrp"
        assert e.flow_scores is not None

    def test_graph_explanation(self, graph_model, mini_mutag):
        e = GNNLRP(graph_model).explain(mini_mutag.graphs[0])
        assert e.flow_scores.shape[0] == e.flow_index.num_flows

    def test_linear_model_exact_mixed_partial(self):
        """On a GCN with identity-ish behaviour the L-order term is exact.

        Build a 1-layer GCN without bias: the class score is linear in each
        layer-edge multiplier, so the finite-difference first derivative is
        exact and equals the message contribution.
        """
        from repro.graph import Graph
        from repro.nn import GNN

        g = Graph(edge_index=np.array([[0], [1]]), x=np.array([[1.0], [2.0]]))
        model = GNN("gcn", "node", 1, 4, 2, num_layers=1, rng=0)
        model.eval()
        e = GNNLRP(model, step=0.05).explain(g, target=1)
        # flows into node 1: edge 0->1 and self-loop 1->1
        assert e.flow_index.num_flows == 2
        assert np.isfinite(e.flow_scores).all()

    def test_relevance_conservation_tendency(self, node_model, mini_ba_shapes,
                                             good_motif_node):
        # decomposition methods: flow relevances are signed and non-trivial
        e = GNNLRP(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.flow_scores.std() > 0

    def test_deterministic(self, node_model, mini_ba_shapes, good_motif_node):
        e1 = GNNLRP(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        e2 = GNNLRP(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert np.allclose(e1.flow_scores, e2.flow_scores)

    def test_stencil_cache_reduces_evals(self, node_model, mini_ba_shapes,
                                         good_motif_node):
        e = GNNLRP(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        full_cost = e.flow_index.num_flows * 2 ** node_model.num_layers
        assert e.meta["perf"]["stencil_evals"] <= full_cost
