"""PGM-Explainer, SubgraphX and the random baseline."""

import numpy as np
import pytest

from repro.explain import PGMExplainer, RandomExplainer, SubgraphX


class TestPGMExplainer:
    def test_node_explanation(self, node_model, mini_ba_shapes, good_motif_node):
        e = PGMExplainer(node_model, num_samples=30, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)
        assert e.meta["params"]["num_samples"] == 30

    def test_graph_explanation(self, graph_model, mini_mutag):
        e = PGMExplainer(graph_model, num_samples=30, seed=0).explain(mini_mutag.graphs[0])
        assert np.isfinite(e.edge_scores).all()

    def test_deterministic(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[1]
        e1 = PGMExplainer(graph_model, num_samples=20, seed=2).explain(g)
        e2 = PGMExplainer(graph_model, num_samples=20, seed=2).explain(g)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_mean_perturbation_mode(self, graph_model, mini_mutag):
        e = PGMExplainer(graph_model, num_samples=20, perturb_mode="mean",
                         seed=0).explain(mini_mutag.graphs[0])
        assert np.isfinite(e.edge_scores).all()

    def test_no_signal_gives_zero_scores(self, graph_model, mini_mutag):
        # with perturb_prob 0 nothing changes → all scores zero
        e = PGMExplainer(graph_model, num_samples=10, perturb_prob=0.0,
                         seed=0).explain(mini_mutag.graphs[0])
        assert np.allclose(e.edge_scores, 0.0)


class TestSubgraphX:
    @pytest.fixture
    def subx(self, graph_model):
        return SubgraphX(graph_model, rollouts=4, shapley_samples=2, min_nodes=4, seed=0)

    def test_graph_explanation(self, subx, mini_mutag):
        e = subx.explain(mini_mutag.graphs[0])
        assert e.method == "subgraphx"
        assert (e.edge_scores >= 0).all()

    def test_node_explanation_keeps_target(self, node_model, mini_ba_shapes,
                                           good_motif_node):
        subx = SubgraphX(node_model, rollouts=3, shapley_samples=2, seed=0)
        e = subx.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)

    def test_graded_scores_for_ranking(self, subx, mini_mutag):
        e = subx.explain(mini_mutag.graphs[0])
        assert len(np.unique(e.edge_scores)) > 2  # not just 0/1

    def test_deterministic(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[1]
        a = SubgraphX(graph_model, rollouts=3, shapley_samples=2, seed=5).explain(g)
        b = SubgraphX(graph_model, rollouts=3, shapley_samples=2, seed=5).explain(g)
        assert np.allclose(a.edge_scores, b.edge_scores)

    def test_connectivity_helper(self, graph_model):
        nbrs = [set([1]), set([0, 2]), set([1]), set()]
        assert SubgraphX._is_connected(frozenset({0, 1, 2}), nbrs)
        assert not SubgraphX._is_connected(frozenset({0, 2}), nbrs)


class TestRandomExplainer:
    def test_scores_uniform(self, node_model, mini_ba_shapes, good_motif_node):
        e = RandomExplainer(node_model, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        ctx = e.edge_scores[e.context_edge_positions]
        assert ((ctx >= 0) & (ctx <= 1)).all()

    def test_graph_task(self, graph_model, mini_mutag):
        e = RandomExplainer(graph_model, seed=0).explain(mini_mutag.graphs[0])
        assert e.edge_scores.shape == (mini_mutag.graphs[0].num_edges,)

    def test_different_calls_differ(self, graph_model, mini_mutag):
        expl = RandomExplainer(graph_model, seed=0)
        e1 = expl.explain(mini_mutag.graphs[0])
        e2 = expl.explain(mini_mutag.graphs[0])
        assert not np.allclose(e1.edge_scores, e2.edge_scores)
