"""GNNExplainer's optional node-feature mask (original method's full form)."""

import numpy as np

from repro.explain import GNNExplainer


class TestFeatureMask:
    def test_disabled_by_default(self, graph_model, mini_mutag):
        e = GNNExplainer(graph_model, epochs=5).explain(mini_mutag.graphs[0])
        assert "feature_scores" not in e.meta

    def test_feature_scores_shape(self, graph_model, mini_mutag):
        e = GNNExplainer(graph_model, epochs=10, feature_mask=True).explain(
            mini_mutag.graphs[0])
        assert e.meta["feature_scores"].shape == (mini_mutag.num_features,)
        assert ((e.meta["feature_scores"] > 0)
                & (e.meta["feature_scores"] < 1)).all()

    def test_node_task_feature_mask(self, node_model, mini_ba_shapes,
                                    good_motif_node):
        e = GNNExplainer(node_model, epochs=10, feature_mask=True).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert e.meta["feature_scores"].shape == (mini_ba_shapes.num_features,)

    def test_edge_scores_still_produced(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        e = GNNExplainer(graph_model, epochs=10, feature_mask=True).explain(g)
        assert e.edge_scores.shape == (g.num_edges,)
        assert np.isfinite(e.edge_scores).all()

    def test_informative_feature_ranks_high(self):
        """A model that uses only feature 0 should get a high mask there."""
        from repro.graph import Graph
        from repro.nn import Trainer, build_model

        rng = np.random.default_rng(0)
        graphs = []
        for i in range(24):
            label = i % 2
            edges = np.array([[0, 1, 1, 2], [1, 0, 2, 1]])
            x = rng.normal(0, 0.05, size=(3, 4))
            x[:, 0] = label * 2.0  # only feature 0 carries the class
            graphs.append(Graph(edge_index=edges, x=x, y=label))
        model = build_model("gcn", "graph", 4, 2, hidden=8, rng=0)
        Trainer(model, epochs=60, patience=None).fit_graphs(graphs, rng=0)
        model.eval()

        g = graphs[1]  # a class-1 instance
        e = GNNExplainer(model, epochs=300, lr=0.05, feature_mask=True,
                         feature_size_weight=0.2).explain(g)
        scores = e.meta["feature_scores"]
        assert scores[0] == scores.max()
