"""GradCAM and DeepLIFT: fast gradient baselines."""

import numpy as np

from repro.explain import DeepLIFT, GradCAM


class TestGradCAM:
    def test_node_explanation_shape(self, node_model, mini_ba_shapes, good_motif_node):
        e = GradCAM(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)
        assert e.method == "gradcam"

    def test_scores_nonnegative(self, node_model, mini_ba_shapes, good_motif_node):
        # GradCAM heat is ReLU'd, so edge scores are >= 0.
        e = GradCAM(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert (e.edge_scores >= 0).all()

    def test_graph_explanation(self, graph_model, mini_mutag):
        e = GradCAM(graph_model).explain(mini_mutag.graphs[0])
        assert e.edge_scores.shape == (mini_mutag.graphs[0].num_edges,)
        assert e.context_edge_positions is None

    def test_deterministic(self, node_model, mini_ba_shapes, good_motif_node):
        e1 = GradCAM(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        e2 = GradCAM(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_counterfactual_mode_reuses_scores(self, node_model, mini_ba_shapes,
                                               good_motif_node):
        g = mini_ba_shapes.graph
        ef = GradCAM(node_model).explain(g, target=good_motif_node, mode="factual")
        ec = GradCAM(node_model).explain(g, target=good_motif_node, mode="counterfactual")
        assert np.allclose(ef.edge_scores, ec.edge_scores)
        assert ec.mode == "counterfactual"

    def test_not_flow_based(self, node_model):
        assert not GradCAM(node_model).is_flow_based


class TestDeepLIFT:
    def test_node_explanation_shape(self, node_model, mini_ba_shapes, good_motif_node):
        e = DeepLIFT(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)

    def test_graph_explanation(self, graph_model, mini_mutag):
        e = DeepLIFT(graph_model).explain(mini_mutag.graphs[1])
        assert np.isfinite(e.edge_scores).all()

    def test_zero_baseline_zero_input_gives_zero(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0].copy()
        g.x = np.zeros_like(g.x)
        e = DeepLIFT(graph_model).explain(g)
        assert np.allclose(e.edge_scores, 0.0)

    def test_custom_baseline_changes_scores(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        e0 = DeepLIFT(graph_model, baseline=0.0).explain(g)
        e1 = DeepLIFT(graph_model, baseline=0.5).explain(g)
        assert not np.allclose(e0.edge_scores, e1.edge_scores)

    def test_signed_attributions_allowed(self, node_model, mini_ba_shapes,
                                         good_motif_node):
        e = DeepLIFT(node_model).explain(mini_ba_shapes.graph, target=good_motif_node)
        # gradient × input is signed — nothing should force positivity
        assert np.isfinite(e.edge_scores).all()
