"""GraphMask hard-concrete gates (the original paper's relaxation)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ExplainerError
from repro.explain import GraphMask


class TestHardConcreteGates:
    def test_unknown_gate_rejected(self, graph_model):
        with pytest.raises(ExplainerError):
            GraphMask(graph_model, gate="gumbel")

    def test_eval_gate_deterministic_and_bounded(self, graph_model):
        gm = GraphMask(graph_model, gate="hard_concrete", seed=0)
        logits = Tensor(np.linspace(-6, 6, 21))
        out1 = gm._hard_concrete(logits, training=False).numpy()
        out2 = gm._hard_concrete(logits, training=False).numpy()
        assert np.allclose(out1, out2)
        assert ((out1 >= 0) & (out1 <= 1)).all()

    def test_gates_reach_exact_zero_and_one(self, graph_model):
        gm = GraphMask(graph_model, gate="hard_concrete", seed=0)
        out = gm._hard_concrete(Tensor(np.array([-20.0, 20.0])), training=False).numpy()
        assert out[0] == 0.0
        assert out[1] == 1.0

    def test_training_gate_stochastic(self, graph_model):
        gm = GraphMask(graph_model, gate="hard_concrete", seed=0)
        logits = Tensor(np.zeros(50))
        a = gm._hard_concrete(logits, training=True).numpy()
        b = gm._hard_concrete(logits, training=True).numpy()
        assert not np.allclose(a, b)

    def test_l0_penalty_monotone(self, graph_model):
        gm = GraphMask(graph_model, gate="hard_concrete", seed=0)
        pen = gm._l0_penalty(Tensor(np.array([-5.0, 0.0, 5.0]))).numpy()
        assert pen[0] < pen[1] < pen[2]
        assert ((pen > 0) & (pen < 1)).all()

    def test_fit_and_explain_end_to_end(self, graph_model, mini_mutag):
        gm = GraphMask(graph_model, epochs=10, gate="hard_concrete", seed=0)
        gm.fit(gm.prepare_instances(mini_mutag.graphs[:3]))
        e = gm.explain(mini_mutag.graphs[4])
        assert ((e.edge_scores >= 0) & (e.edge_scores <= 1)).all()
        assert np.isfinite(e.edge_scores).all()

    def test_node_task_hard_concrete(self, node_model, mini_ba_shapes,
                                     good_motif_node):
        gm = GraphMask(node_model, epochs=10, gate="hard_concrete", seed=0)
        gm.fit(gm.prepare_instances(mini_ba_shapes.graph,
                                    targets=[good_motif_node]))
        e = gm.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)

    def test_sparsity_pressure_closes_gates(self, graph_model, mini_mutag):
        """Strong L0 pressure should drive the mean gate well below the
        weakly-regularized variant."""
        g = mini_mutag.graphs[4]

        def mean_gate(weight):
            gm = GraphMask(graph_model, epochs=40, gate="hard_concrete",
                           sparsity_weight=weight, seed=0)
            gm.fit(gm.prepare_instances(mini_mutag.graphs[:3]))
            e = gm.explain(g)
            return e.edge_scores.mean()

        assert mean_gate(5.0) < mean_gate(0.0) + 1e-9
