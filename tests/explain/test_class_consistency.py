"""Regression: every explainer must explain the model's FULL-graph
prediction, not the prediction on the extracted L-hop context.

GCN renormalization can flip the argmax when a node's neighborhood is cut
down to the computational subgraph; explaining that drifted class would
make fidelity evaluation measure the wrong thing.
"""

import pytest

from repro.explain import make_explainer

FAST = {
    "gradcam": {},
    "deeplift": {},
    "gnnexplainer": {"epochs": 5},
    "pgm_explainer": {"num_samples": 10},
    "subgraphx": {"rollouts": 2, "shapley_samples": 2},
    "gnn_lrp": {},
    "flowx": {"samples": 1, "finetune_epochs": 5},
    "revelio": {"epochs": 5},
    "random": {},
}


def _drifting_node(model, dataset):
    """Find a node whose context-subgraph prediction differs from the
    full-graph one; skip the test when this model/dataset has none."""
    expl = make_explainer("random", model)
    graph = dataset.graph
    full_pred = model.predict(graph)
    for v in range(graph.num_nodes):
        ctx = expl.node_context(graph, int(v))
        if ctx.subgraph.num_edges == 0:
            continue
        sub_pred = int(model.predict(ctx.subgraph)[ctx.local_target])
        if sub_pred != full_pred[v]:
            return int(v), int(full_pred[v])
    return None, None


@pytest.mark.parametrize("method", sorted(FAST))
def test_explained_class_is_full_graph_prediction(method, node_model, mini_ba_shapes):
    node, full_class = _drifting_node(node_model, mini_ba_shapes)
    if node is None:
        pytest.skip("no drifting node in this fixture model")
    expl = make_explainer(method, node_model, **FAST[method])
    if hasattr(expl, "fit"):
        pytest.skip("group methods compute classes at fit time")
    e = expl.explain(mini_ba_shapes.graph, target=node)
    assert e.predicted_class == full_class
