"""Converted explainers: batched engine path vs. legacy serial forwards.

Both paths draw randomness in the same order, so the outputs must agree to
float tolerance (the batched engine is numerically the same computation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.fidelity import Instance, fidelity_curve
from repro.explain.base import clear_context_cache
from repro.explain.flowx import FlowX
from repro.explain.gnn_lrp import GNNLRP
from repro.explain.pgm_explainer import PGMExplainer
from repro.explain.subgraphx import SubgraphX
from repro.flows import FLOW_CACHE


@pytest.fixture(autouse=True)
def _clean_caches():
    FLOW_CACHE.clear()
    clear_context_cache()
    yield
    FLOW_CACHE.clear()
    clear_context_cache()


def _pair(make, graph, target):
    batched = make(True).explain(graph, target)
    serial = make(False).explain(graph, target)
    return batched, serial


@pytest.mark.parametrize("factory", [
    lambda m, b: FlowX(m, samples=3, finetune_epochs=5, batched=b, seed=0),
    lambda m, b: GNNLRP(m, batched=b, seed=0),
    lambda m, b: SubgraphX(m, rollouts=4, shapley_samples=3, batched=b, seed=0),
    lambda m, b: PGMExplainer(m, num_samples=30, batched=b, seed=0),
], ids=["flowx", "gnn_lrp", "subgraphx", "pgm_explainer"])
def test_batched_matches_serial_node_task(mini_ba_shapes, node_model, good_motif_node, factory):
    graph = mini_ba_shapes.graph
    batched, serial = _pair(lambda b: factory(node_model, b), graph, good_motif_node)
    np.testing.assert_allclose(batched.edge_scores, serial.edge_scores, atol=1e-8)
    assert batched.predicted_class == serial.predicted_class


@pytest.mark.parametrize("factory", [
    lambda m, b: FlowX(m, samples=2, finetune_epochs=3, batched=b, seed=0),
    lambda m, b: GNNLRP(m, max_flows=500_000, batched=b, seed=0),
], ids=["flowx", "gnn_lrp"])
def test_batched_matches_serial_graph_task(mini_mutag, graph_model, factory):
    graph = mini_mutag.graphs[0]
    batched = factory(graph_model, True).explain(graph)
    serial = factory(graph_model, False).explain(graph)
    np.testing.assert_allclose(batched.edge_scores, serial.edge_scores, atol=1e-8)


def test_fidelity_curve_batched_matches_serial(mini_ba_shapes, node_model, good_motif_node):
    graph = mini_ba_shapes.graph
    expl = FlowX(node_model, samples=2, finetune_epochs=3, seed=0)
    explanation = expl.explain(graph, good_motif_node)
    instances = [Instance(graph, good_motif_node)]
    grid = [0.1, 0.3, 0.5, 0.7, 0.9]
    for metric in ("minus", "plus"):
        a = fidelity_curve(node_model, instances, [explanation], grid, metric=metric)
        b = fidelity_curve(node_model, instances, [explanation], grid,
                           metric=metric, batched=False)
        for s in grid:
            assert abs(a[s] - b[s]) < 1e-8
