"""Cross-explainer node-context cache behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.explain.base import (
    CONTEXT_CACHE,
    clear_context_cache,
    context_cache_disabled,
)
from repro.explain.random_baseline import RandomExplainer
from repro.obs.counters import PERF


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_context_cache()
    yield
    clear_context_cache()


def test_context_shared_across_explainer_instances(mini_ba_shapes, node_model):
    g = mini_ba_shapes.graph
    node = int(mini_ba_shapes.motif_nodes[0])
    a = RandomExplainer(node_model).node_context(g, node)
    hits_before = PERF.context_cache_hits
    b = RandomExplainer(node_model, seed=1).node_context(g, node)
    assert b is a
    assert PERF.context_cache_hits == hits_before + 1


def test_feature_change_misses_cache(mini_ba_shapes, node_model):
    g = mini_ba_shapes.graph
    node = int(mini_ba_shapes.motif_nodes[0])
    expl = RandomExplainer(node_model)
    a = expl.node_context(g, node)
    perturbed = g.copy()
    perturbed.x = g.x * 0.5
    b = expl.node_context(perturbed, node)
    assert b is not a
    np.testing.assert_allclose(b.subgraph.x, a.subgraph.x * 0.5)


def test_disabled_context_cache(mini_ba_shapes, node_model):
    g = mini_ba_shapes.graph
    node = int(mini_ba_shapes.motif_nodes[0])
    expl = RandomExplainer(node_model)
    with context_cache_disabled():
        a = expl.node_context(g, node)
        b = expl.node_context(g, node)
    assert a is not b
    assert len(CONTEXT_CACHE) == 0


def test_disabled_context_cache_restores_on_raise(mini_ba_shapes, node_model):
    from repro.explain.base import _CONTEXT_CACHE_ENABLED

    assert _CONTEXT_CACHE_ENABLED[0]
    with pytest.raises(RuntimeError):
        with context_cache_disabled():
            assert not _CONTEXT_CACHE_ENABLED[0]
            raise RuntimeError("body blew up")
    assert _CONTEXT_CACHE_ENABLED[0]
    # and caching actually works again afterwards
    g = mini_ba_shapes.graph
    node = int(mini_ba_shapes.motif_nodes[0])
    expl = RandomExplainer(node_model)
    assert expl.node_context(g, node) is expl.node_context(g, node)
