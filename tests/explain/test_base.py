"""Explainer framework: contexts, Explanation helpers, registry."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explain import EXPLAINERS, Explanation, make_explainer
from repro.explain.base import Explainer
from repro.flows import enumerate_flows


class TestExplanation:
    def make(self, **over):
        defaults = dict(edge_scores=np.array([0.1, 0.9, 0.5, 0.3]),
                        predicted_class=1, method="test")
        defaults.update(over)
        return Explanation(**defaults)

    def test_top_edges_order(self):
        e = self.make()
        assert e.top_edges(2).tolist() == [1, 2]

    def test_top_edges_capped(self):
        e = self.make()
        assert e.top_edges(100).shape == (4,)

    def test_top_flows_requires_flow_scores(self):
        with pytest.raises(ExplainerError):
            self.make().top_flows(3)

    def test_top_flows_with_context_translation(self, triangle_graph):
        fi = enumerate_flows(triangle_graph, 2, target=1)
        scores = np.linspace(0, 1, fi.num_flows)
        ids = np.array([10, 11, 12])  # pretend original node ids
        e = self.make(flow_scores=scores, flow_index=fi, context_node_ids=ids)
        seq, score = e.top_flows(1)[0]
        assert all(v >= 10 for v in seq)
        assert score == pytest.approx(scores.max())

    def test_repr(self):
        assert "test" in repr(self.make())


class TestNodeContext:
    def test_context_target_mapped(self, node_model, mini_ba_shapes):
        expl = make_explainer("random", node_model)
        node = int(mini_ba_shapes.motif_nodes[0])
        ctx = expl.node_context(mini_ba_shapes.graph, node)
        assert ctx.node_ids[ctx.local_target] == node

    def test_context_edges_subset(self, node_model, mini_ba_shapes):
        expl = make_explainer("random", node_model)
        ctx = expl.node_context(mini_ba_shapes.graph, int(mini_ba_shapes.motif_nodes[0]))
        assert ctx.edge_positions.size == ctx.subgraph.num_edges
        assert ctx.edge_positions.max() < mini_ba_shapes.graph.num_edges

    def test_lift_edge_scores(self, node_model, mini_ba_shapes):
        expl = make_explainer("random", node_model)
        graph = mini_ba_shapes.graph
        ctx = expl.node_context(graph, int(mini_ba_shapes.motif_nodes[0]))
        local = np.ones(ctx.subgraph.num_edges)
        full = expl.lift_edge_scores(ctx, local, graph.num_edges)
        assert full.sum() == ctx.subgraph.num_edges
        assert full.shape == (graph.num_edges,)

    def test_predicted_class_node(self, node_model, mini_ba_shapes):
        expl = make_explainer("random", node_model)
        c = expl.predicted_class(mini_ba_shapes.graph, target=0)
        assert c == int(node_model.predict(mini_ba_shapes.graph)[0])


class TestDispatch:
    def test_node_model_requires_target(self, node_model, mini_ba_shapes):
        expl = make_explainer("random", node_model)
        with pytest.raises(ExplainerError):
            expl.explain(mini_ba_shapes.graph)

    def test_bad_mode(self, node_model, mini_ba_shapes):
        expl = make_explainer("random", node_model)
        with pytest.raises(ExplainerError):
            expl.explain(mini_ba_shapes.graph, target=0, mode="maybe")

    def test_graph_model_ignores_target(self, graph_model, mini_mutag):
        expl = make_explainer("random", graph_model)
        e = expl.explain(mini_mutag.graphs[0], target=5)
        assert e.target is None

    def test_base_class_abstract(self, node_model, mini_ba_shapes):
        expl = Explainer(node_model)
        with pytest.raises(NotImplementedError):
            expl.explain(mini_ba_shapes.graph, target=0)


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        expected = {"gradcam", "deeplift", "gnnexplainer", "pgexplainer", "graphmask",
                    "pgm_explainer", "subgraphx", "gnn_lrp", "flowx", "random",
                    "relevant_walks"}
        assert set(EXPLAINERS) == expected

    def test_make_revelio_topk(self, node_model):
        from repro.core import TopKRevelio

        expl = make_explainer("revelio_topk", node_model, k=4)
        assert isinstance(expl, TopKRevelio)

    def test_make_revelio(self, node_model):
        from repro.core import Revelio

        assert isinstance(make_explainer("revelio", node_model), Revelio)

    def test_make_unknown(self, node_model):
        with pytest.raises(ExplainerError):
            make_explainer("lime", node_model)

    def test_hyphen_normalization(self, node_model):
        expl = make_explainer("GNN-LRP", node_model)
        assert expl.name == "gnn_lrp"

    def test_kwargs_forwarded(self, node_model):
        expl = make_explainer("gnnexplainer", node_model, epochs=7)
        assert expl.epochs == 7
