"""Property-based invariants shared by every explainer.

On random small graph-classification instances, each method must produce
finite, correctly-shaped edge scores; flow-based methods' flow scores must
align with their flow index; and context handling must be consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explain import make_explainer
from repro.graph import Graph, coalesce_edges
from repro.nn import build_model

FAST_CFG = {
    "gradcam": {},
    "deeplift": {},
    "gnnexplainer": {"epochs": 4},
    "pgm_explainer": {"num_samples": 8},
    "gnn_lrp": {},
    "flowx": {"samples": 1, "finetune_epochs": 4},
    "revelio": {"epochs": 4},
    "random": {},
}


@pytest.fixture(scope="module")
def tiny_model():
    model = build_model("gcn", "graph", 4, 2, hidden=8, num_layers=2, rng=0)
    model.eval()
    return model


@st.composite
def molecule_like(draw):
    n = draw(st.integers(4, 9))
    seed = draw(st.integers(0, 5000))
    rng = np.random.default_rng(seed)
    pairs = [(int(rng.integers(v)), v) for v in range(1, n)]
    arr = np.array(pairs, dtype=np.int64).T
    edge_index = coalesce_edges(np.concatenate([arr, arr[::-1]], axis=1))
    x = rng.normal(size=(n, 4))
    return Graph(edge_index=edge_index, x=x, y=int(rng.integers(2)))


@settings(max_examples=8, deadline=None)
@given(graph=molecule_like(), method=st.sampled_from(sorted(FAST_CFG)))
def test_explanations_always_wellformed(tiny_model, graph, method):
    explainer = make_explainer(method, tiny_model, seed=0, **FAST_CFG[method])
    e = explainer.explain(graph)
    assert e.edge_scores.shape == (graph.num_edges,)
    assert np.isfinite(e.edge_scores).all()
    assert 0 <= e.predicted_class < 2
    if e.flow_scores is not None:
        assert e.flow_scores.shape == (e.flow_index.num_flows,)
        assert np.isfinite(e.flow_scores).all()


@settings(max_examples=8, deadline=None)
@given(graph=molecule_like())
def test_revelio_flow_scores_bounded(tiny_model, graph):
    e = make_explainer("revelio", tiny_model, seed=0, epochs=4).explain(graph)
    assert (np.abs(e.flow_scores) <= 1.0 + 1e-12).all()
    assert (e.layer_edge_scores > 0).all()
    assert (e.layer_edge_scores < 1).all()


@settings(max_examples=8, deadline=None)
@given(graph=molecule_like())
def test_top_edges_are_a_permutation_prefix(tiny_model, graph):
    e = make_explainer("random", tiny_model, seed=1).explain(graph)
    for k in (1, 3, graph.num_edges):
        top = e.top_edges(k)
        assert len(set(top.tolist())) == min(k, graph.num_edges)
        # scores actually descend
        values = e.edge_scores[top]
        assert (np.diff(values) <= 1e-12).all()
