"""Top-k relevant-walk search (the polynomial-time flow explainer)."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explain import RelevantWalks
from repro.flows import enumerate_flows


class TestRelevantWalks:
    def test_returns_k_walks(self, node_model, mini_ba_shapes, good_motif_node):
        expl = RelevantWalks(node_model, k=7)
        e = expl.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.flow_index.num_flows <= 7
        assert e.flow_scores.shape[0] == e.flow_index.num_flows

    def test_walks_are_valid_flows(self, node_model, mini_ba_shapes, good_motif_node):
        expl = RelevantWalks(node_model, k=10)
        e = expl.explain(mini_ba_shapes.graph, target=good_motif_node)
        ctx = expl.node_context(mini_ba_shapes.graph, good_motif_node)
        full = enumerate_flows(ctx.subgraph, node_model.num_layers,
                               target=ctx.local_target)
        all_seqs = {tuple(s) for s in full.nodes.tolist()}
        for seq in e.flow_index.nodes.tolist():
            assert tuple(seq) in all_seqs

    def test_scores_sorted_and_normalized(self, node_model, mini_ba_shapes,
                                          good_motif_node):
        e = RelevantWalks(node_model, k=8).explain(mini_ba_shapes.graph,
                                                   target=good_motif_node)
        assert e.flow_scores[0] == pytest.approx(1.0)
        assert (np.diff(e.flow_scores) <= 1e-12).all()
        assert (e.flow_scores > 0).all()

    def test_top_walk_is_global_argmax(self, node_model, mini_ba_shapes,
                                       good_motif_node):
        """The DP's best walk must match brute-force over all flows."""

        expl = RelevantWalks(node_model, k=1)
        ctx = expl.node_context(mini_ba_shapes.graph, good_motif_node)
        class_idx = expl.predicted_class(mini_ba_shapes.graph, target=good_motif_node)
        relevance = expl._layer_edge_relevance(ctx.subgraph, class_idx,
                                               ctx.local_target)
        log_w = np.where(relevance > 0, np.log(relevance + 1e-300), -30.0)

        full = enumerate_flows(ctx.subgraph, node_model.num_layers,
                               target=ctx.local_target)
        brute = np.zeros(full.num_flows)
        for l in range(full.num_layers):
            brute += log_w[l, full.layer_edges[:, l]]
        best_brute = brute.max()

        e = expl.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.meta["log_scores"][0] == pytest.approx(best_brute, abs=1e-9)

    def test_graph_task(self, graph_model, mini_mutag):
        e = RelevantWalks(graph_model, k=12).explain(mini_mutag.graphs[0])
        assert e.flow_index.num_flows <= 12
        assert np.isfinite(e.edge_scores).all()

    def test_cost_independent_of_flow_count(self, node_model, mini_ba_shapes):
        """The search never enumerates all flows — it runs fine where full
        enumeration would be large."""
        import time

        graph = mini_ba_shapes.graph
        expl = RelevantWalks(node_model, k=5)
        node = int(mini_ba_shapes.motif_nodes[0])
        t0 = time.perf_counter()
        e = expl.explain(graph, target=node)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0
        assert e.flow_index.num_flows <= 5

    def test_k_validation(self, node_model):
        with pytest.raises(ExplainerError):
            RelevantWalks(node_model, k=0)

    def test_deterministic(self, node_model, mini_ba_shapes, good_motif_node):
        g = mini_ba_shapes.graph
        e1 = RelevantWalks(node_model, k=5).explain(g, target=good_motif_node)
        e2 = RelevantWalks(node_model, k=5).explain(g, target=good_motif_node)
        assert np.array_equal(e1.flow_index.nodes, e2.flow_index.nodes)

    def test_registry_integration(self, node_model, mini_ba_shapes, good_motif_node):
        from repro.explain import make_explainer

        e = make_explainer("relevant_walks", node_model, k=3).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert e.method == "relevant_walks"
