"""GNNExplainer, PGExplainer and GraphMask: mask-learning baselines."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explain import GNNExplainer, GraphMask, PGExplainer


class TestGNNExplainer:
    def test_node_explanation(self, node_model, mini_ba_shapes, good_motif_node):
        e = GNNExplainer(node_model, epochs=30).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)

    def test_scores_in_unit_interval(self, node_model, mini_ba_shapes, good_motif_node):
        e = GNNExplainer(node_model, epochs=30).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        ctx_scores = e.edge_scores[e.context_edge_positions]
        assert ((ctx_scores >= 0) & (ctx_scores <= 1)).all()

    def test_graph_explanation(self, graph_model, mini_mutag):
        e = GNNExplainer(graph_model, epochs=30).explain(mini_mutag.graphs[0])
        assert e.edge_scores.shape == (mini_mutag.graphs[0].num_edges,)

    def test_counterfactual_inverts_scores(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        # Same seed, same epochs: factual and cf solve different objectives,
        # but cf scores are reported as 1 - sigmoid(m).
        e = GNNExplainer(graph_model, epochs=5, seed=0).explain(g, mode="counterfactual")
        assert ((e.edge_scores >= 0) & (e.edge_scores <= 1)).all()
        assert e.mode == "counterfactual"

    def test_deterministic(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[2]
        e1 = GNNExplainer(graph_model, epochs=10, seed=4).explain(g)
        e2 = GNNExplainer(graph_model, epochs=10, seed=4).explain(g)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_learning_moves_masks(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        e = GNNExplainer(graph_model, epochs=60, lr=0.05).explain(g)
        assert e.edge_scores.std() > 1e-3  # not stuck at initialization


class TestPGExplainer:
    def test_requires_fit(self, node_model, mini_ba_shapes):
        with pytest.raises(ExplainerError):
            PGExplainer(node_model).explain(mini_ba_shapes.graph, target=0)

    def test_fit_then_explain_node(self, node_model, mini_ba_shapes, good_motif_node):
        expl = PGExplainer(node_model, epochs=10)
        instances = expl.prepare_instances(mini_ba_shapes.graph,
                                           targets=[good_motif_node])
        expl.fit(instances)
        e = expl.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)
        assert e.meta["perf"]["train_seconds"] > 0

    def test_fit_then_explain_graph(self, graph_model, mini_mutag):
        expl = PGExplainer(graph_model, epochs=10)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:4]))
        e = expl.explain(mini_mutag.graphs[5])
        assert ((e.edge_scores >= 0) & (e.edge_scores <= 1)).all()

    def test_inference_fast_after_training(self, graph_model, mini_mutag):
        import time

        expl = PGExplainer(graph_model, epochs=10)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:3]))
        t0 = time.perf_counter()
        expl.explain(mini_mutag.graphs[4])
        assert time.perf_counter() - t0 < 0.5  # single MLP pass

    def test_generalizes_across_instances(self, graph_model, mini_mutag):
        # group-level: one fit explains unseen graphs
        expl = PGExplainer(graph_model, epochs=10)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:3]))
        e1 = expl.explain(mini_mutag.graphs[7])
        e2 = expl.explain(mini_mutag.graphs[8])
        assert e1.edge_scores.shape[0] == mini_mutag.graphs[7].num_edges
        assert e2.edge_scores.shape[0] == mini_mutag.graphs[8].num_edges

    def test_counterfactual_mode(self, graph_model, mini_mutag):
        expl = PGExplainer(graph_model, epochs=5)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:3]), mode="counterfactual")
        e = expl.explain(mini_mutag.graphs[4], mode="counterfactual")
        assert e.mode == "counterfactual"


class TestGraphMask:
    def test_requires_fit(self, node_model, mini_ba_shapes):
        with pytest.raises(ExplainerError):
            GraphMask(node_model).explain(mini_ba_shapes.graph, target=0)

    def test_fit_then_explain(self, graph_model, mini_mutag):
        expl = GraphMask(graph_model, epochs=10)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:3]))
        e = expl.explain(mini_mutag.graphs[4])
        assert ((e.edge_scores >= 0) & (e.edge_scores <= 1)).all()

    def test_layer_scores_provided(self, graph_model, mini_mutag):
        expl = GraphMask(graph_model, epochs=10)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:3]))
        g = mini_mutag.graphs[4]
        e = expl.explain(g)
        assert e.layer_edge_scores.shape == (
            graph_model.num_layers, g.num_edges + g.num_nodes)

    def test_node_task(self, node_model, mini_ba_shapes, good_motif_node):
        expl = GraphMask(node_model, epochs=10)
        expl.fit(expl.prepare_instances(mini_ba_shapes.graph, targets=[good_motif_node]))
        e = expl.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.edge_scores.shape == (mini_ba_shapes.graph.num_edges,)

    def test_counterfactual_flips_scores(self, graph_model, mini_mutag):
        expl = GraphMask(graph_model, epochs=5)
        expl.fit(expl.prepare_instances(mini_mutag.graphs[:3]))
        g = mini_mutag.graphs[4]
        ef = expl.explain(g, mode="factual")
        ec = expl.explain(g, mode="counterfactual")
        assert np.allclose(ef.edge_scores, 1.0 - ec.edge_scores)
