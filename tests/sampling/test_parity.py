"""Exact parity: sampled explanations equal full-graph explanations.

The sampling subsystem's core claim (DESIGN.md §13): routing any
registered explainer through the target's receptive field produces edge
scores within 1e-8 of the full-graph path (observed: exactly equal), the
same predicted class, and the target lifted back to its global id — for
every explainer, node and link targets, both modes.
"""

import numpy as np
import pytest

from repro.datasets import cora
from repro.errors import ExplainerError
from repro.explain import EXPLAINERS, ExplainTarget, make_explainer
from repro.nn.models import build_model
from repro.sampling import SampledExplainRuntime

PARITY_TOL = 1e-8

#: Small-budget hyperparameters per method — parity is exact regardless
#: of the budget, so the sweep runs the cheapest configuration of each.
FAST = {
    "gnnexplainer": {"epochs": 8},
    "pgexplainer": {"epochs": 6},
    "graphmask": {"epochs": 6},
    "pgm_explainer": {"num_samples": 15},
    "subgraphx": {"rollouts": 3},
    "flowx": {"samples": 2},
    "deeplift": {},
    "gradcam": {},
    "gnn_lrp": {},
    "random": {},
    "relevant_walks": {},
    "revelio": {"epochs": 8},
    "revelio_topk": {"epochs": 8, "k": 8},
}

ALL_NAMES = sorted(set(EXPLAINERS) | {"revelio", "revelio_topk"})


@pytest.fixture(scope="module")
def small_cora():
    ds = cora(scale=0.12, seed=0)
    # Untrained weights: parity is a property of the forward machinery,
    # not the fit, and skipping training keeps the sweep fast.
    model = build_model("gcn", "node", ds.graph.num_features, ds.num_classes,
                        rng=0)
    target = int(np.flatnonzero(ds.graph.in_degree() >= 2)[5])
    return ds.graph, model, target


def test_registry_is_fully_swept():
    """A newly registered explainer must be added to the parity sweep."""
    assert set(ALL_NAMES) == set(FAST)


@pytest.mark.parametrize("mode", ["factual", "counterfactual"])
@pytest.mark.parametrize("name", ALL_NAMES)
def test_node_parity(small_cora, name, mode):
    graph, model, target = small_cora
    kwargs = FAST[name]
    full_explainer = make_explainer(name, model, seed=3, **kwargs)
    sampled_explainer = make_explainer(name, model, seed=3, **kwargs)
    if hasattr(full_explainer, "fit"):
        # Group-fit methods are deterministic at explain time; share one
        # fitted instance so both paths query the same trained masks.
        instances = full_explainer.prepare_instances(graph, [target])
        full_explainer.fit(instances, mode=mode)
        sampled_explainer = full_explainer

    full = full_explainer.explain(graph, ExplainTarget.node(target), mode=mode)
    sampled = SampledExplainRuntime(sampled_explainer).explain(
        graph, ExplainTarget.node(target), mode=mode)

    assert sampled.target == target
    assert sampled.predicted_class == full.predicted_class
    diff = float(np.abs(full.edge_scores - sampled.edge_scores).max())
    assert diff <= PARITY_TOL, f"{name}/{mode}: max diff {diff}"
    assert (np.sort(sampled.context_node_ids)
            == np.sort(full.context_node_ids)).all()
    meta = sampled.meta["sampled"]
    assert meta["targets"] == [target]
    assert meta["num_hops"] == model.num_layers


@pytest.mark.parametrize("mode", ["factual", "counterfactual"])
def test_link_parity(mode):
    from repro.core import LinkRevelio
    from repro.graph import Graph, sbm_edges
    from repro.nn import LinkPredictor, train_link_predictor

    rng = np.random.default_rng(0)
    edges = sbm_edges([15, 15], 0.4, 0.02, rng=rng)
    y = np.array([0] * 15 + [1] * 15)
    x = rng.normal(size=(30, 6)) + y[:, None]
    graph = Graph(edge_index=edges, x=x, y=y)
    model = LinkPredictor("gcn", 6, 16, rng=0)
    train_link_predictor(model, graph, epochs=30, rng=0)
    u, v = (int(i) for i in graph.edge_index[:, 0])
    target = ExplainTarget.link(u, v)

    full = LinkRevelio(model, epochs=10, seed=4).explain(graph, target,
                                                         mode=mode)
    sampled = SampledExplainRuntime(LinkRevelio(model, epochs=10, seed=4)) \
        .explain(graph, target, mode=mode)

    assert sampled.meta["link"] == (u, v)
    diff = float(np.abs(full.edge_scores - sampled.edge_scores).max())
    assert diff <= PARITY_TOL, f"link/{mode}: max diff {diff}"
    assert sampled.meta["p_link"] == pytest.approx(full.meta["p_link"],
                                                   abs=PARITY_TOL)


def test_runtime_rejects_graph_targets(small_cora):
    graph, model, _ = small_cora
    runtime = SampledExplainRuntime(make_explainer("gradcam", model))
    with pytest.raises(ExplainerError, match="node or link"):
        runtime.explain(graph, ExplainTarget.graph(0))
    with pytest.raises(ExplainerError, match="node or link"):
        runtime.explain(graph, None)


def test_runtime_coerces_bare_int(small_cora):
    graph, model, target = small_cora
    with pytest.warns(DeprecationWarning, match="SampledExplainRuntime"):
        explanation = SampledExplainRuntime(
            make_explainer("gradcam", model)).explain(graph, target)
    assert explanation.target == target
