"""SampledSubgraph id maps and the exact-forward ReceptiveField extractor."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (Graph, SampledSubgraph, extract_receptive_field,
                         khop_in_nodes)


def _ring_with_spur(num_nodes=8):
    """Directed ring 0->1->...->0 plus a spur edge 0->4 and an isolate."""
    src = list(range(num_nodes)) + [0]
    dst = [(i + 1) % num_nodes for i in range(num_nodes)] + [4]
    edge_index = np.array([src, dst])
    x = np.arange((num_nodes + 1) * 2, dtype=float).reshape(num_nodes + 1, 2)
    return Graph(edge_index=edge_index, x=x)  # node num_nodes is isolated


class TestKhopInNodes:
    def test_matches_naive_bfs(self):
        g = _ring_with_spur()
        src, dst = g.edge_index
        for hops in (1, 2, 3):
            for t in range(g.num_nodes):
                visited = {t}
                frontier = {t}
                for _ in range(hops):
                    frontier = {int(s) for s, d in zip(src, dst)
                                if int(d) in frontier} - visited
                    visited |= frontier
                got = khop_in_nodes(g, [t], hops)
                assert sorted(visited) == got.tolist(), (t, hops)

    def test_union_of_targets(self):
        g = _ring_with_spur()
        single = np.union1d(khop_in_nodes(g, [1], 2), khop_in_nodes(g, [5], 2))
        assert (khop_in_nodes(g, [1, 5], 2) == single).all()

    def test_validation(self):
        g = _ring_with_spur()
        with pytest.raises(GraphError):
            khop_in_nodes(g, [], 2)
        with pytest.raises(GraphError):
            khop_in_nodes(g, [0], -1)
        with pytest.raises(GraphError):
            khop_in_nodes(g, [g.num_nodes], 2)
        assert khop_in_nodes(g, [3], 0).tolist() == [3]


class TestSampledSubgraphMaps:
    def test_id_maps_round_trip(self):
        g = _ring_with_spur()
        field = extract_receptive_field(g, [3], 2)
        local = field.local_index(field.node_ids)
        assert (field.to_global_nodes(local) == field.node_ids).all()
        assert field.graph.num_nodes == field.node_ids.shape[0]
        assert (field.graph.x == g.x[field.node_ids]).all()

    def test_disconnected_target_is_its_own_field(self):
        g = _ring_with_spur()
        isolate = g.num_nodes - 1
        field = extract_receptive_field(g, [isolate], 3)
        assert field.node_ids.tolist() == [isolate]
        assert field.graph.num_edges == 0
        assert int(field.local_targets[0]) == 0

    def test_boundary_node_identified(self):
        # 1-hop from node 2 of the ring reaches node 1, whose own in-edge
        # (0 -> 1) is outside the sample: node 1 is a boundary node.
        g = _ring_with_spur()
        field = extract_receptive_field(g, [2], 1)
        assert field.node_ids.tolist() == [1, 2]
        sub_src, sub_dst = field.graph.edge_index
        assert field.graph.num_edges == 1  # only 1 -> 2 survives
        assert field.to_global_nodes(sub_src[0]) == 1

    def test_local_index_rejects_unsampled_nodes(self):
        g = _ring_with_spur()
        field = extract_receptive_field(g, [2], 1)
        with pytest.raises(GraphError):
            field.local_index(6)

    def test_lift_edge_scores_round_trip(self):
        g = _ring_with_spur()
        field = extract_receptive_field(g, [3], 2)
        local = np.arange(1.0, field.num_edges + 1)
        lifted = field.lift_edge_scores(local)
        assert lifted.shape == (g.num_edges,)
        assert (lifted[field.edge_positions] == local).all()
        outside = np.setdiff1d(np.arange(g.num_edges), field.edge_positions)
        assert (lifted[outside] == 0).all()

    def test_legacy_tuple_unpack_warns(self):
        g = _ring_with_spur()
        field = extract_receptive_field(g, [3], 2)
        with pytest.warns(DeprecationWarning, match="SampledSubgraph"):
            node_ids, edge_mask = field
        assert (node_ids == field.node_ids).all()
        assert (edge_mask == field.edge_mask).all()


class TestReceptiveFieldForwardParity:
    def test_forward_exact_at_target_rows(self, node_model, mini_ba_shapes):
        """The preloaded degree cache makes the local forward exact: the
        sampled prediction rows equal the full-graph rows bitwise."""
        from repro.sampling import ReceptiveField

        graph = mini_ba_shapes.graph
        full = node_model.predict_proba(graph)
        extractor = ReceptiveField(node_model.num_layers)
        targets = [0, 5, int(graph.num_nodes - 1)]
        field = extractor.extract(graph, targets)
        local = node_model.predict_proba(field.graph)
        for t, lt in zip(field.targets, field.local_targets):
            assert (local[int(lt)] == full[int(t)]).all()

    def test_accepts_explain_targets(self, node_model, mini_ba_shapes):
        from repro.explain import ExplainTarget
        from repro.sampling import ReceptiveField

        graph = mini_ba_shapes.graph
        extractor = ReceptiveField(2)
        mixed = extractor.extract(graph, [ExplainTarget.node(3),
                                          ExplainTarget.link(1, 5), 7])
        assert sorted(int(t) for t in mixed.targets) == \
            sorted(set(int(t) for t in
                       extractor.extract(graph, [3, 1, 5, 7]).targets))
        with pytest.raises(GraphError):
            extractor.extract(graph, [ExplainTarget.graph(0)])

    def test_num_hops_validation(self):
        from repro.sampling import ReceptiveField

        with pytest.raises(GraphError):
            ReceptiveField(0)


class TestKhopSubgraphShim:
    def test_returns_sampled_subgraph(self):
        from repro.graph import k_hop_subgraph

        g = _ring_with_spur()
        field = k_hop_subgraph(g, 3, 2)
        assert isinstance(field, SampledSubgraph)
        assert (field.node_ids == khop_in_nodes(g, [3], 2)).all()
