"""Shared fixtures: tiny graphs and session-scoped mini target models.

The heavy fixtures (trained models) are session-scoped and deliberately
small so the whole suite runs in well under a minute; explainer tests care
about mechanics and invariants, not benchmark-grade accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ba_2motifs, ba_shapes, mutag
from repro.graph import Graph
from repro.nn import Trainer, build_model


@pytest.fixture(autouse=True)
def _isolated_model_cache(tmp_path_factory, monkeypatch):
    """Point the model zoo cache at a per-session temp dir."""
    cache = tmp_path_factory.getbasetemp() / "zoo-cache"
    monkeypatch.setenv("REPRO_CACHE", str(cache))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def triangle_graph():
    """3 nodes, bidirectional edges 0<->1 and 1<->2."""
    edge_index = np.array([[0, 1, 1, 2], [1, 0, 2, 1]])
    return Graph(edge_index=edge_index, x=np.eye(3))


@pytest.fixture
def path_graph():
    """Directed path 0 -> 1 -> 2 -> 3."""
    edge_index = np.array([[0, 1, 2], [1, 2, 3]])
    return Graph(edge_index=edge_index, x=np.eye(4))


@pytest.fixture
def labelled_graph(rng):
    """Small two-block homophilous graph with split masks."""
    from repro.graph import sbm_edges

    edges = sbm_edges([12, 12], 0.4, 0.03, rng=rng)
    y = np.array([0] * 12 + [1] * 12)
    x = rng.normal(size=(24, 6)) + y[:, None]
    u = rng.random(24)
    return Graph(edge_index=edges, x=x, y=y,
                 train_mask=u < 0.6, val_mask=(u >= 0.6) & (u < 0.8), test_mask=u >= 0.8)


# ----------------------------------------------------------------------
# session-scoped trained targets
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def mini_ba_shapes():
    return ba_shapes(scale=0.12, seed=0)


@pytest.fixture(scope="session")
def node_model(mini_ba_shapes):
    """A small GCN trained on mini BA-Shapes (node classification)."""
    ds = mini_ba_shapes
    model = build_model("gcn", "node", ds.num_features, ds.num_classes, hidden=16, rng=0)
    Trainer(model, lr=0.02, weight_decay=0.0, epochs=250, patience=None).fit_node(ds.graph)
    model.eval()
    return model


@pytest.fixture(scope="session")
def mini_mutag():
    return mutag(scale=0.15, seed=0)


@pytest.fixture(scope="session")
def graph_model(mini_mutag):
    """A small GIN trained on mini MUTAG (graph classification)."""
    ds = mini_mutag
    model = build_model("gin", "graph", ds.num_features, ds.num_classes, hidden=16, rng=0)
    Trainer(model, lr=0.02, weight_decay=0.0, epochs=80, patience=None).fit_graphs(
        ds.graphs, batch_size=64, rng=0
    )
    model.eval()
    return model


@pytest.fixture(scope="session")
def mini_2motifs():
    return ba_2motifs(scale=0.02, seed=0)


@pytest.fixture
def good_motif_node(mini_ba_shapes, node_model):
    """A motif node the model classifies correctly (explanations are clean)."""
    ds = mini_ba_shapes
    pred = node_model.predict(ds.graph)
    for v in ds.motif_nodes:
        if pred[v] == ds.graph.y[v]:
            return int(v)
    return int(ds.motif_nodes[0])
