"""GATConv against a from-scratch numpy computation of attention."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.graph import Graph
from repro.nn import GATConv
from repro.nn.message_passing import augment_edges


def manual_gat(conv: GATConv, graph: Graph) -> np.ndarray:
    """Recompute single-head GAT output with plain numpy."""
    W = conv.weight.numpy()            # (F_in, H*F_out) with H=1
    a_src = conv.att_src.numpy()[0]    # (F_out,)
    a_dst = conv.att_dst.numpy()[0]
    bias = conv.bias.numpy()
    slope = conv.negative_slope

    h = graph.x @ W                    # (N, F_out)
    src, dst = augment_edges(graph.edge_index, graph.num_nodes)
    logits = h[src] @ a_src + h[dst] @ a_dst
    logits = np.where(logits > 0, logits, slope * logits)  # leaky relu

    out = np.zeros_like(h)
    for j in range(graph.num_nodes):
        incoming = np.flatnonzero(dst == j)
        exp = np.exp(logits[incoming] - logits[incoming].max())
        alpha = exp / exp.sum()
        out[j] = (alpha[:, None] * h[src[incoming]]).sum(axis=0)
    return out + bias


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edge_index = np.array([[0, 1, 2, 2, 3], [1, 2, 0, 3, 0]])
    return Graph(edge_index=edge_index, x=rng.normal(size=(4, 5)))


class TestGATManual:
    def test_matches_manual_computation(self, graph):
        conv = GATConv(5, 7, heads=1, rng=0)
        expected = manual_gat(conv, graph)
        actual = conv(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy()
        assert np.allclose(actual, expected, atol=1e-10)

    def test_attention_is_convex_combination(self, graph):
        """Pre-bias output of each node lies in the convex hull of the
        projected inputs (attention weights sum to 1)."""
        conv = GATConv(5, 7, heads=1, rng=1)
        h = graph.x @ conv.weight.numpy()
        out = conv(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy()
        pre_bias = out - conv.bias.numpy()
        lo = h.min(axis=0) - 1e-9
        hi = h.max(axis=0) + 1e-9
        assert ((pre_bias >= lo) & (pre_bias <= hi)).all()

    def test_mask_scales_attention_weighted_message(self, graph):
        """With a 0.5 mask on one edge, the destination's change equals half
        of that edge's attention-weighted message (attention unchanged)."""
        conv = GATConv(5, 7, heads=1, rng=2)
        x = Tensor(graph.x)
        n = graph.num_edges + graph.num_nodes
        full = conv(x, graph.edge_index, graph.num_nodes,
                    edge_mask=Tensor(np.ones(n))).numpy()
        half = np.ones(n)
        half[0] = 0.5  # edge 0 -> 1
        halved = conv(x, graph.edge_index, graph.num_nodes,
                      edge_mask=Tensor(half)).numpy()
        zeroed = np.ones(n)
        zeroed[0] = 0.0
        killed = conv(x, graph.edge_index, graph.num_nodes,
                      edge_mask=Tensor(zeroed)).numpy()
        # linear in the mask: full - halved == (full - killed) / 2
        assert np.allclose(full - halved, 0.5 * (full - killed), atol=1e-10)

    def test_multihead_concat_consistency(self, graph):
        """Each head of a 2-head concat layer equals a 1-head layer with the
        same per-head parameters."""
        conv2 = GATConv(5, 3, heads=2, concat_heads=True, rng=3)
        out2 = conv2(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy()
        for head in range(2):
            conv1 = GATConv(5, 3, heads=1, rng=0)
            conv1.weight.data = conv2.weight.numpy()[:, head * 3:(head + 1) * 3].copy()
            conv1.att_src.data = conv2.att_src.numpy()[head:head + 1].copy()
            conv1.att_dst.data = conv2.att_dst.numpy()[head:head + 1].copy()
            conv1.bias.data = np.zeros(3)
            out1 = conv1(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy()
            block = out2[:, head * 3:(head + 1) * 3] - conv2.bias.numpy()[head * 3:(head + 1) * 3]
            assert np.allclose(out1, block, atol=1e-10)
