"""GNN model class: construction, forward variants, inference helpers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ModelError
from repro.graph import Graph, GraphBatch
from repro.nn import GNN, build_model


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edge_index = np.array([[0, 1, 1, 2, 3, 2], [1, 0, 2, 1, 2, 3]])
    return Graph(edge_index=edge_index, x=rng.normal(size=(4, 6)), y=np.array([0, 1, 0, 1]))


class TestConstruction:
    def test_unknown_conv(self):
        with pytest.raises(ModelError):
            GNN("sage", "node", 4, 8, 2)

    def test_unknown_task(self):
        with pytest.raises(ModelError):
            GNN("gcn", "edge", 4, 8, 2)

    def test_zero_layers(self):
        with pytest.raises(ModelError):
            GNN("gcn", "node", 4, 8, 2, num_layers=0)

    def test_bad_pool(self):
        with pytest.raises(ModelError):
            GNN("gcn", "graph", 4, 8, 2, pool="median")

    def test_gat_head_divisibility(self):
        with pytest.raises(ModelError):
            GNN("gat", "node", 4, 30, 2, heads=8)

    def test_build_model_defaults(self):
        m = build_model("gat", "node", 4, 2)
        assert m.num_layers == 3
        assert m.heads == 8

    def test_repr(self):
        assert "gcn" in repr(build_model("gcn", "node", 4, 2))


class TestForward:
    @pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
    def test_node_logits_shape(self, graph, conv):
        model = GNN(conv, "node", 6, 16, 3, heads=8 if conv == "gat" else 1, rng=0)
        out = model.forward_graph(graph)
        assert out.shape == (4, 3)

    @pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
    def test_graph_logits_shape(self, graph, conv):
        model = GNN(conv, "graph", 6, 16, 2, heads=8 if conv == "gat" else 1, rng=0)
        out = model.forward_graph(graph)
        assert out.shape == (1, 2)

    def test_batch_forward(self, graph):
        model = GNN("gin", "graph", 6, 8, 2, rng=0)
        g2 = graph.copy()
        g2.y = 1
        graph.y = 0
        batch = GraphBatch([graph, g2])
        out = model.forward_batch(batch)
        assert out.shape == (2, 2)

    def test_batch_forward_matches_individual(self, graph):
        model = GNN("gcn", "graph", 6, 8, 2, rng=0)
        g1, g2 = graph.copy(), graph.copy()
        g1.y, g2.y = 0, 1
        batch = GraphBatch([g1, g2])
        batched = model.forward_batch(batch).numpy()
        single1 = model.forward_graph(g1).numpy()
        single2 = model.forward_graph(g2).numpy()
        assert np.allclose(batched[0], single1[0])
        assert np.allclose(batched[1], single2[0])

    def test_batch_on_node_model_rejected(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, rng=0)
        with pytest.raises(ModelError):
            model.forward_batch(GraphBatch([graph]))

    def test_wrong_mask_count(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, num_layers=3, rng=0)
        with pytest.raises(ModelError):
            model.forward_graph(graph, edge_masks=[Tensor(np.ones(10))])

    def test_pool_variants_differ(self, graph):
        outs = {}
        for pool in ("sum", "mean", "max"):
            model = GNN("gcn", "graph", 6, 8, 2, pool=pool, rng=0)
            outs[pool] = model.forward_graph(graph).numpy()
        assert not np.allclose(outs["sum"], outs["mean"])
        assert not np.allclose(outs["mean"], outs["max"])


class TestInference:
    def test_predict_proba_normalized(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, rng=0)
        proba = model.predict_proba(graph)
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_matches_proba(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, rng=0)
        assert np.array_equal(model.predict(graph), model.predict_proba(graph).argmax(axis=1))

    def test_log_prob_differentiable(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, rng=0)
        lp = model.log_prob(graph)
        assert lp.requires_grad

    def test_node_embeddings_per_layer(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, num_layers=3, rng=0)
        embs = model.node_embeddings(graph)
        assert len(embs) == 3
        assert all(e.shape == (4, 8) for e in embs)

    def test_layer_edge_count(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, rng=0)
        assert model.layer_edge_count(graph) == graph.num_edges + graph.num_nodes

    def test_clone_identical(self, graph):
        model = GNN("gin", "graph", 6, 8, 2, rng=0)
        twin = model.clone()
        assert np.allclose(model.forward_graph(graph).numpy(),
                           twin.forward_graph(graph).numpy())

    def test_clone_independent(self, graph):
        model = GNN("gcn", "node", 6, 8, 2, rng=0)
        twin = model.clone()
        twin.head.weight.data += 1.0
        assert not np.allclose(model.forward_graph(graph).numpy(),
                               twin.forward_graph(graph).numpy())
