"""Convolution layers: shapes, mask semantics, gradients.

The critical contract for the whole library: a mask of all-ones must be a
no-op, a zero mask must silence exactly that layer edge's message, and
gradients must flow through masks (they are Revelio's optimization target).
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.errors import ShapeError
from repro.graph import Graph
from repro.nn import GATConv, GCNConv, GINConv, augment_edges, num_layer_edges


@pytest.fixture
def graph():
    edge_index = np.array([[0, 1, 1, 2, 3], [1, 0, 2, 1, 2]])
    rng = np.random.default_rng(0)
    return Graph(edge_index=edge_index, x=rng.normal(size=(4, 6)))


def convs(rng=0):
    return [
        GCNConv(6, 5, rng=rng),
        GCNConv(6, 5, normalize=False, rng=rng),
        GINConv(6, 5, rng=rng),
        GATConv(6, 5, heads=1, rng=rng),
        GATConv(6, 4, heads=2, concat_heads=True, rng=rng),
        GATConv(6, 5, heads=3, concat_heads=False, rng=rng),
    ]


def out_dim(conv):
    if isinstance(conv, GATConv):
        return conv.out_features * (conv.heads if conv.concat_heads else 1)
    return conv.out_features


class TestShapes:
    @pytest.mark.parametrize("conv_idx", range(6))
    def test_output_shape(self, graph, conv_idx):
        conv = convs()[conv_idx]
        out = conv(Tensor(graph.x), graph.edge_index, graph.num_nodes)
        assert out.shape == (4, out_dim(conv))

    def test_augment_edges_layout(self, graph):
        src, dst = augment_edges(graph.edge_index, graph.num_nodes)
        assert src.shape[0] == graph.num_edges + graph.num_nodes
        # last N entries are self-loops
        assert np.array_equal(src[-4:], np.arange(4))
        assert np.array_equal(dst[-4:], np.arange(4))

    def test_num_layer_edges(self):
        assert num_layer_edges(5, 4) == 9

    @pytest.mark.parametrize("conv_idx", range(6))
    def test_wrong_mask_length_rejected(self, graph, conv_idx):
        conv = convs()[conv_idx]
        bad = Tensor(np.ones(3))
        with pytest.raises(ShapeError):
            conv(Tensor(graph.x), graph.edge_index, graph.num_nodes, edge_mask=bad)


class TestMaskSemantics:
    @pytest.mark.parametrize("conv_idx", range(6))
    def test_ones_mask_is_identity(self, graph, conv_idx):
        conv = convs()[conv_idx]
        x = Tensor(graph.x)
        plain = conv(x, graph.edge_index, graph.num_nodes).numpy()
        ones = Tensor(np.ones(num_layer_edges(graph.num_edges, graph.num_nodes)))
        masked = conv(x, graph.edge_index, graph.num_nodes, edge_mask=ones).numpy()
        assert np.allclose(plain, masked)

    @pytest.mark.parametrize("conv_idx", range(6))
    def test_zero_mask_silences_all(self, graph, conv_idx):
        conv = convs()[conv_idx]
        x = Tensor(graph.x)
        zeros = Tensor(np.zeros(num_layer_edges(graph.num_edges, graph.num_nodes)))
        out = conv(x, graph.edge_index, graph.num_nodes, edge_mask=zeros).numpy()
        # Aggregation is zero everywhere; only bias/MLP-of-zero remains, so
        # every node's output row must be identical.
        assert np.allclose(out, out[0])

    def test_zero_one_edge_affects_only_its_destination(self, graph):
        conv = GCNConv(6, 5, rng=0)
        x = Tensor(graph.x)
        full = np.ones(num_layer_edges(graph.num_edges, graph.num_nodes))
        plain = conv(x, graph.edge_index, graph.num_nodes, edge_mask=Tensor(full)).numpy()
        # Edge 0 is 0 -> 1: masking it must change node 1 only.
        killed = full.copy()
        killed[0] = 0.0
        masked = conv(x, graph.edge_index, graph.num_nodes, edge_mask=Tensor(killed)).numpy()
        changed = ~np.isclose(plain, masked).all(axis=1)
        assert changed.tolist() == [False, True, False, False]

    def test_self_loop_mask_affects_own_node(self, graph):
        conv = GINConv(6, 5, rng=0)
        x = Tensor(graph.x)
        full = np.ones(num_layer_edges(graph.num_edges, graph.num_nodes))
        plain = conv(x, graph.edge_index, graph.num_nodes, edge_mask=Tensor(full)).numpy()
        killed = full.copy()
        killed[graph.num_edges + 2] = 0.0  # node 2's self-loop
        masked = conv(x, graph.edge_index, graph.num_nodes, edge_mask=Tensor(killed)).numpy()
        changed = ~np.isclose(plain, masked).all(axis=1)
        assert changed.tolist() == [False, False, True, False]

    def test_half_mask_scales_message_linearly_gcn(self, graph):
        # For GCN (linear in messages), mask 0.5 on an edge = average of
        # mask 0 and mask 1 outputs at the destination.
        conv = GCNConv(6, 5, bias=False, rng=0)
        x = Tensor(graph.x)
        n = num_layer_edges(graph.num_edges, graph.num_nodes)

        def run(v):
            m = np.ones(n)
            m[0] = v
            return conv(x, graph.edge_index, graph.num_nodes, edge_mask=Tensor(m)).numpy()

        assert np.allclose(run(0.5), 0.5 * (run(0.0) + run(1.0)))


class TestGradients:
    @pytest.mark.parametrize("conv_idx", range(6))
    def test_mask_gradients_match_numerics(self, graph, conv_idx):
        conv = convs()[conv_idx]
        for p in conv.parameters():
            p.requires_grad = False
        x = Tensor(graph.x)
        mask = Tensor(
            np.random.default_rng(1).uniform(0.3, 0.9,
                                             num_layer_edges(graph.num_edges, graph.num_nodes)),
            requires_grad=True,
        )
        check_gradients(
            lambda: (conv(x, graph.edge_index, graph.num_nodes, edge_mask=mask) ** 2).sum(),
            [mask], atol=1e-4, rtol=1e-3,
        )

    def test_weight_gradients_gcn(self, graph):
        conv = GCNConv(6, 3, rng=0)
        x = Tensor(graph.x)
        check_gradients(
            lambda: (conv(x, graph.edge_index, graph.num_nodes) ** 2).sum(),
            [conv.weight, conv.bias], atol=1e-4, rtol=1e-3,
        )

    def test_gat_attention_normalized(self, graph):
        conv = GATConv(6, 4, heads=2, rng=0)
        src, dst = augment_edges(graph.edge_index, graph.num_nodes)
        # indirect check: output is a convex combination bound — each output
        # row (pre-bias) has norm at most the max projected input row norm.
        x = Tensor(graph.x)
        out = conv(x, graph.edge_index, graph.num_nodes)
        assert np.isfinite(out.numpy()).all()


class TestGINSpecifics:
    def test_eps_contributes(self, graph):
        conv = GINConv(6, 5, rng=0)
        x = Tensor(graph.x)
        base = conv(x, graph.edge_index, graph.num_nodes).numpy()
        conv.eps.data = np.array([5.0])
        boosted = conv(x, graph.edge_index, graph.num_nodes).numpy()
        assert not np.allclose(base, boosted)

    def test_fixed_eps_variant(self, graph):
        conv = GINConv(6, 5, train_eps=False, rng=0)
        assert conv.eps is None
        out = conv(Tensor(graph.x), graph.edge_index, graph.num_nodes)
        assert out.shape == (4, 5)
