"""Global pooling layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import global_max_pool, global_mean_pool, global_sum_pool


@pytest.fixture
def batch_setup():
    x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]]),
               requires_grad=True)
    batch = np.array([0, 0, 1, 1])
    return x, batch


class TestSumPool:
    def test_values(self, batch_setup):
        x, batch = batch_setup
        out = global_sum_pool(x, batch, 2).numpy()
        assert np.allclose(out, [[4.0, 6.0], [12.0, 14.0]])

    def test_grad(self, batch_setup):
        x, batch = batch_setup
        check_gradients(lambda: (global_sum_pool(x, batch, 2) ** 2).sum(), [x])


class TestMeanPool:
    def test_values(self, batch_setup):
        x, batch = batch_setup
        out = global_mean_pool(x, batch, 2).numpy()
        assert np.allclose(out, [[2.0, 3.0], [6.0, 7.0]])

    def test_unequal_sizes(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = global_mean_pool(x, np.array([0, 1, 1]), 2).numpy()
        assert np.allclose(out, [[2.0], [5.0]])

    def test_grad(self, batch_setup):
        x, batch = batch_setup
        check_gradients(lambda: (global_mean_pool(x, batch, 2) ** 2).sum(), [x])

    def test_empty_graph_slot_zero(self):
        x = Tensor(np.array([[1.0]]))
        out = global_mean_pool(x, np.array([0]), 3).numpy()
        assert np.allclose(out[1:], 0.0)


class TestMaxPool:
    def test_values(self, batch_setup):
        x, batch = batch_setup
        out = global_max_pool(x, batch, 2).numpy()
        assert np.allclose(out, [[3.0, 4.0], [7.0, 8.0]])

    def test_grad_unique_max(self, batch_setup):
        x, batch = batch_setup
        check_gradients(lambda: (global_max_pool(x, batch, 2) ** 2).sum(), [x])

    def test_negative_values(self):
        x = Tensor(np.array([[-5.0], [-2.0]]))
        out = global_max_pool(x, np.array([0, 0]), 1).numpy()
        assert out[0, 0] == -2.0
