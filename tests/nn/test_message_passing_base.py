"""MessagePassing base-layer contract."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ShapeError
from repro.nn.message_passing import GraphConv, augment_edges, num_layer_edges


class TestAugmentEdges:
    def test_data_edges_preserved_in_order(self):
        ei = np.array([[3, 1], [0, 2]])
        src, dst = augment_edges(ei, 4)
        assert src[:2].tolist() == [3, 1]
        assert dst[:2].tolist() == [0, 2]

    def test_self_loops_appended(self):
        src, dst = augment_edges(np.zeros((2, 0), dtype=int), 3)
        assert src.tolist() == [0, 1, 2]
        assert dst.tolist() == [0, 1, 2]

    def test_layer_edge_id_convention(self):
        """Data edge e has id e; node v's self-loop has id E + v."""
        ei = np.array([[0, 2], [1, 0]])
        src, dst = augment_edges(ei, 3)
        E = 2
        for v in range(3):
            assert src[E + v] == v
            assert dst[E + v] == v

    def test_count_matches_num_layer_edges(self):
        ei = np.array([[0, 1, 2], [1, 2, 0]])
        src, _ = augment_edges(ei, 5)
        assert src.shape[0] == num_layer_edges(3, 5)


class TestMaskChecking:
    def test_none_passthrough(self):
        assert GraphConv()._check_mask(None, 3, 4) is None

    def test_1d_reshaped_to_column(self):
        mask = GraphConv()._check_mask(Tensor(np.ones(7)), 3, 4)
        assert mask.shape == (7, 1)

    def test_2d_accepted(self):
        mask = GraphConv()._check_mask(Tensor(np.ones((7, 1))), 3, 4)
        assert mask.shape == (7, 1)

    def test_wrong_length_raises_with_breakdown(self):
        with pytest.raises(ShapeError) as err:
            GraphConv()._check_mask(Tensor(np.ones(5)), 3, 4)
        assert "3 data edges" in str(err.value)
        assert "4 self-loops" in str(err.value)

    def test_forward_abstract(self):
        with pytest.raises(NotImplementedError):
            GraphConv().forward(Tensor(np.ones((2, 2))), np.zeros((2, 0), dtype=int), 2)
