"""Trainer behaviour: learning, early stopping, evaluation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.graph import Graph, sbm_edges
from repro.nn import Trainer, build_model, train_graph_classifier, train_node_classifier


def separable_node_graph(seed=0):
    rng = np.random.default_rng(seed)
    edges = sbm_edges([15, 15], 0.4, 0.02, rng=rng)
    y = np.array([0] * 15 + [1] * 15)
    x = rng.normal(size=(30, 5)) + 2.0 * y[:, None]
    u = rng.random(30)
    return Graph(edge_index=edges, x=x, y=y, train_mask=u < 0.5,
                 val_mask=(u >= 0.5) & (u < 0.75), test_mask=u >= 0.75)


def separable_graphs(n=24, seed=0):
    rng = np.random.default_rng(seed)
    graphs = []
    for i in range(n):
        label = i % 2
        k = int(rng.integers(5, 9))
        edges = np.array([[j for j in range(k - 1)], [j + 1 for j in range(k - 1)]])
        edges = np.concatenate([edges, edges[::-1]], axis=1)
        x = rng.normal(size=(k, 4)) + 2.0 * label
        graphs.append(Graph(edge_index=edges, x=x, y=label))
    return graphs


class TestNodeTraining:
    def test_learns_separable_data(self):
        g = separable_node_graph()
        model = build_model("gcn", "node", 5, 2, hidden=16, rng=0)
        result = Trainer(model, epochs=80, patience=None).fit_node(g)
        assert result.test_acc > 0.8

    def test_history_recorded(self):
        g = separable_node_graph()
        model = build_model("gcn", "node", 5, 2, hidden=8, rng=0)
        result = Trainer(model, epochs=10, patience=None).fit_node(g)
        assert len(result.history) == 10
        assert {"epoch", "loss", "train_acc", "val_acc"} <= set(result.history[0])

    def test_early_stopping_triggers(self):
        g = separable_node_graph()
        model = build_model("gcn", "node", 5, 2, hidden=16, rng=0)
        result = Trainer(model, epochs=500, patience=5).fit_node(g)
        assert result.epochs_run < 500

    def test_best_state_restored(self):
        g = separable_node_graph()
        model = build_model("gcn", "node", 5, 2, hidden=16, rng=0)
        result = Trainer(model, epochs=60, patience=None).fit_node(g)
        # val accuracy of restored model equals best seen
        best_val = max(h["val_acc"] for h in result.history)
        assert result.val_acc == pytest.approx(best_val, abs=1e-9)

    def test_wrong_task_rejected(self):
        model = build_model("gcn", "graph", 5, 2, rng=0)
        with pytest.raises(ModelError):
            Trainer(model).fit_node(separable_node_graph())

    def test_missing_train_mask(self):
        g = separable_node_graph()
        g.train_mask = None
        model = build_model("gcn", "node", 5, 2, rng=0)
        with pytest.raises(ModelError):
            Trainer(model).fit_node(g)

    def test_missing_labels(self):
        g = separable_node_graph()
        g.y = None
        model = build_model("gcn", "node", 5, 2, rng=0)
        with pytest.raises(ModelError):
            Trainer(model).fit_node(g)

    def test_convenience_wrapper(self):
        g = separable_node_graph()
        model = build_model("gcn", "node", 5, 2, hidden=8, rng=0)
        result = train_node_classifier(model, g, epochs=15, patience=None)
        assert result.epochs_run == 15


class TestGraphTraining:
    def test_learns_separable_graphs(self):
        graphs = separable_graphs()
        model = build_model("gin", "graph", 4, 2, hidden=16, rng=0)
        result = Trainer(model, epochs=40, patience=None).fit_graphs(graphs, rng=0)
        assert result.train_acc > 0.85

    def test_split_fractions(self):
        graphs = separable_graphs(n=30)
        model = build_model("gcn", "graph", 4, 2, hidden=8, rng=0)
        trainer = Trainer(model, epochs=2, patience=None)
        result = trainer.fit_graphs(graphs, val_fraction=0.2, test_fraction=0.2, rng=0)
        assert result.epochs_run == 2

    def test_wrong_task_rejected(self):
        model = build_model("gcn", "node", 4, 2, rng=0)
        with pytest.raises(ModelError):
            Trainer(model).fit_graphs(separable_graphs())

    def test_evaluate_empty_is_nan(self):
        model = build_model("gcn", "graph", 4, 2, rng=0)
        assert np.isnan(Trainer(model).evaluate_graphs([]))

    def test_convenience_wrapper(self):
        graphs = separable_graphs()
        model = build_model("gcn", "graph", 4, 2, hidden=8, rng=0)
        result = train_graph_classifier(model, graphs,
                                        trainer_kwargs={"epochs": 3, "patience": None},
                                        rng=0)
        assert result.epochs_run == 3
