"""Property-based invariants of the GNN models.

The deep ones: graph-level predictions must be invariant to node
relabelling (message passing + pooling is permutation equivariant), and
masked forwards must interpolate between the full and empty graphs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.graph import Graph, coalesce_edges
from repro.nn import GNN


@st.composite
def attributed_graphs(draw):
    n = draw(st.integers(3, 10))
    m = draw(st.integers(2, 20))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    if not keep.any():
        src, dst = np.array([0]), np.array([1])
        keep = np.array([True])
    edge_index = coalesce_edges(np.stack([src[keep], dst[keep]]))
    x = rng.normal(size=(n, 5))
    return Graph(edge_index=edge_index, x=x), seed


@settings(max_examples=25, deadline=None)
@given(data=attributed_graphs(), conv=st.sampled_from(["gcn", "gin", "gat"]))
def test_graph_prediction_permutation_invariant(data, conv):
    graph, seed = data
    model = GNN(conv, "graph", 5, 8, 2, num_layers=2,
                heads=2 if conv == "gat" else 1, rng=0)
    model.eval()
    base = model.forward_graph(graph).numpy()

    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_nodes)
    inverse = np.argsort(perm)
    permuted = Graph(
        edge_index=np.stack([perm[graph.src], perm[graph.dst]]),
        x=graph.x[inverse],
        num_nodes=graph.num_nodes,
    )
    permuted_out = model.forward_graph(permuted).numpy()
    assert np.allclose(base, permuted_out, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(data=attributed_graphs(), conv=st.sampled_from(["gcn", "gin", "gat"]))
def test_ones_mask_matches_unmasked(data, conv):
    graph, _ = data
    model = GNN(conv, "node", 5, 8, 2, num_layers=2,
                heads=2 if conv == "gat" else 1, rng=0)
    model.eval()
    plain = model.forward_graph(graph).numpy()
    ones = [Tensor(np.ones(graph.num_edges + graph.num_nodes))
            for _ in range(model.num_layers)]
    masked = model.forward_graph(graph, edge_masks=ones).numpy()
    assert np.allclose(plain, masked)


@settings(max_examples=25, deadline=None)
@given(data=attributed_graphs())
def test_node_logits_finite_under_random_masks(data):
    graph, seed = data
    rng = np.random.default_rng(seed)
    model = GNN("gcn", "node", 5, 8, 3, num_layers=2, rng=0)
    model.eval()
    masks = [Tensor(rng.uniform(0, 1, graph.num_edges + graph.num_nodes))
             for _ in range(2)]
    out = model.forward_graph(graph, edge_masks=masks).numpy()
    assert np.isfinite(out).all()


@settings(max_examples=25, deadline=None)
@given(data=attributed_graphs())
def test_probabilities_normalized_on_random_graphs(data):
    graph, _ = data
    model = GNN("gin", "node", 5, 8, 4, num_layers=2, rng=0)
    model.eval()
    proba = model.predict_proba(graph)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert (proba >= 0).all()


@settings(max_examples=20, deadline=None)
@given(data=attributed_graphs())
def test_isolated_extra_node_does_not_change_other_logits(data):
    """Adding an isolated node must leave existing node logits unchanged
    (locality of message passing)."""
    graph, _ = data
    model = GNN("gcn", "node", 5, 8, 2, num_layers=2, rng=0)
    model.eval()
    base = model.forward_graph(graph).numpy()
    extended = Graph(
        edge_index=graph.edge_index,
        x=np.concatenate([graph.x, np.zeros((1, 5))]),
        num_nodes=graph.num_nodes + 1,
    )
    out = model.forward_graph(extended).numpy()
    assert np.allclose(base, out[:-1], atol=1e-8)
