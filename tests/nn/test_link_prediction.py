"""Link-prediction substrate: encoder, negative sampling, training."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ModelError
from repro.graph import Graph, sbm_edges
from repro.nn import (
    LinkPredictor,
    sample_negative_edges,
    train_link_predictor,
)


@pytest.fixture(scope="module")
def link_graph():
    rng = np.random.default_rng(0)
    edges = sbm_edges([20, 20], 0.35, 0.02, rng=rng)
    y = np.array([0] * 20 + [1] * 20)
    x = rng.normal(size=(40, 6)) + y[:, None]
    return Graph(edge_index=edges, x=x, y=y)


class TestLinkPredictor:
    def test_construction_validates_conv(self):
        with pytest.raises(ModelError):
            LinkPredictor("sage", 6, 16)

    def test_encode_shape(self, link_graph):
        model = LinkPredictor("gcn", 6, 16, rng=0)
        z = model.encode(link_graph)
        assert z.shape == (40, 16)

    def test_link_logits_shape(self, link_graph):
        model = LinkPredictor("gcn", 6, 16, rng=0)
        pairs = np.array([[0, 1], [5, 30], [12, 13]])
        assert model.link_logits(link_graph, pairs).shape == (3,)

    def test_predict_proba_bounds(self, link_graph):
        # GIN's untrained sum aggregation can saturate the sigmoid, so the
        # bound is closed.
        model = LinkPredictor("gin", 6, 16, rng=0)
        probs = model.predict_proba(link_graph, np.array([[0, 1], [0, 39]]))
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_mask_count_validated(self, link_graph):
        model = LinkPredictor("gcn", 6, 16, num_layers=3, rng=0)
        with pytest.raises(ModelError):
            model.encode(link_graph, edge_masks=[Tensor(np.ones(2))])

    def test_ones_mask_is_identity(self, link_graph):
        model = LinkPredictor("gcn", 6, 16, rng=0)
        model.eval()
        plain = model.encode(link_graph).numpy()
        n = link_graph.num_edges + link_graph.num_nodes
        masked = model.encode(link_graph,
                              edge_masks=[Tensor(np.ones(n))] * 3).numpy()
        assert np.allclose(plain, masked)

    @pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
    def test_all_convs_supported(self, link_graph, conv):
        model = LinkPredictor(conv, 6, 16, rng=0)
        assert model.link_logits(link_graph, np.array([[0, 1]])).shape == (1,)


class TestNegativeSampling:
    def test_no_existing_edges(self, link_graph):
        neg = sample_negative_edges(link_graph, 30, rng=0)
        existing = set(zip(link_graph.src.tolist(), link_graph.dst.tolist()))
        for u, v in neg:
            assert (int(u), int(v)) not in existing
            assert u != v

    def test_count(self, link_graph):
        assert sample_negative_edges(link_graph, 17, rng=0).shape == (17, 2)

    def test_deterministic(self, link_graph):
        a = sample_negative_edges(link_graph, 10, rng=3)
        b = sample_negative_edges(link_graph, 10, rng=3)
        assert np.array_equal(a, b)


class TestTraining:
    def test_learns_homophilous_links(self, link_graph):
        model = LinkPredictor("gcn", 6, 16, rng=0)
        result = train_link_predictor(model, link_graph, epochs=60, rng=0)
        assert result.train_auc > 0.8
        assert result.test_auc > 0.65

    def test_result_repr(self, link_graph):
        model = LinkPredictor("gcn", 6, 8, rng=0)
        result = train_link_predictor(model, link_graph, epochs=5, rng=0)
        assert "test_auc" in repr(result)
        assert result.epochs_run == 5
