"""Model zoo: recipes, caching, compatibility guards."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import RECIPES, get_model, train_target_model
from repro.nn.zoo import TrainRecipe, cache_dir


class TestRecipes:
    def test_all_datasets_have_recipes(self):
        from repro.datasets import DATASET_NAMES

        for name in DATASET_NAMES:
            assert name in RECIPES

    def test_synthetics_disable_weight_decay(self):
        assert RECIPES["ba_shapes"].weight_decay == 0.0
        assert RECIPES["ba_2motifs"].weight_decay == 0.0


class TestGetModel:
    def test_trains_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        model1, ds1, result1 = get_model("tree_cycles", "gcn", scale=0.12, seed=0)
        assert result1 is not None  # freshly trained
        ckpts = list(tmp_path.glob("tree_cycles_gcn_*.npz"))
        assert len(ckpts) == 1

        model2, ds2, result2 = get_model("tree_cycles", "gcn", scale=0.12, seed=0)
        assert result2 is None  # cache hit
        assert np.allclose(model1.head.weight.numpy(), model2.head.weight.numpy())

    def test_cache_key_depends_on_scale(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        get_model("tree_cycles", "gcn", scale=0.12, seed=0)
        get_model("tree_cycles", "gcn", scale=0.14, seed=0)
        assert len(list(tmp_path.glob("tree_cycles_gcn_*.npz"))) == 2

    def test_no_cache_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        _, _, result = get_model("tree_cycles", "gcn", scale=0.12, seed=0, use_cache=False)
        assert result is not None
        assert not list(tmp_path.glob("*.npz"))

    def test_gat_rejected_on_synthetics(self):
        with pytest.raises(ModelError):
            get_model("ba_shapes", "gat", scale=0.12)

    def test_metadata_written(self, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        get_model("tree_cycles", "gcn", scale=0.12, seed=0)
        meta_file = next(tmp_path.glob("tree_cycles_gcn_*.json"))
        meta = json.loads(meta_file.read_text())
        assert meta["dataset"] == "tree_cycles"
        assert "test_acc" in meta

    def test_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "sub"))
        assert cache_dir() == tmp_path / "sub"
        assert cache_dir().exists()


class TestTrainTarget:
    def test_custom_recipe(self):
        from repro.datasets import tree_cycles

        ds = tree_cycles(scale=0.12, seed=0)
        model, result = train_target_model(ds, "gcn",
                                           recipe=TrainRecipe(epochs=5, patience=None))
        assert result.epochs_run == 5
        assert model.task == "node"

    def test_graph_task(self):
        from repro.datasets import mutag

        ds = mutag(scale=0.12, seed=0)
        model, result = train_target_model(ds, "gin",
                                           recipe=TrainRecipe(epochs=5, patience=None))
        assert model.task == "graph"
