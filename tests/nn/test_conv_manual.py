"""GCNConv / GINConv against from-scratch numpy computations."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.graph import Graph
from repro.nn import GCNConv, GINConv


@pytest.fixture
def graph():
    rng = np.random.default_rng(1)
    edge_index = np.array([[0, 1, 2, 3, 1], [1, 2, 0, 1, 0]])
    return Graph(edge_index=edge_index, x=rng.normal(size=(4, 5)))


def manual_gcn(conv: GCNConv, graph: Graph) -> np.ndarray:
    """D̂^{-1/2} Â D̂^{-1/2} X W + b with Â = A + I."""
    n = graph.num_nodes
    A = np.zeros((n, n))
    A[graph.src, graph.dst] = 1.0
    A_hat = A + np.eye(n)
    deg = A_hat.sum(axis=0)  # in-degree over augmented edges
    d_inv_sqrt = 1.0 / np.sqrt(deg)
    # message i -> j scaled by 1/sqrt(d_i d_j): out = (D^-1/2 Â D^-1/2)^T X W
    norm = (d_inv_sqrt[:, None] * A_hat) * d_inv_sqrt[None, :]
    return norm.T @ (graph.x @ conv.weight.numpy()) + conv.bias.numpy()


def manual_gin(conv: GINConv, graph: Graph) -> np.ndarray:
    """MLP((1 + eps) x_j + Σ_{i -> j} x_i)."""
    agg = np.zeros_like(graph.x)
    for u, v in zip(graph.src, graph.dst):
        agg[v] += graph.x[u]
    eps = conv.eps.numpy()[0] if conv.eps is not None else 0.0
    agg += (1.0 + eps) * graph.x

    lin1, _, lin2 = conv.mlp.net.layers
    h = agg @ lin1.weight.numpy() + lin1.bias.numpy()
    h = np.maximum(h, 0.0)
    return h @ lin2.weight.numpy() + lin2.bias.numpy()


class TestGCNManual:
    def test_matches_manual(self, graph):
        conv = GCNConv(5, 6, rng=0)
        assert np.allclose(
            conv(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy(),
            manual_gcn(conv, graph), atol=1e-10,
        )

    def test_unnormalized_is_sum_aggregation(self, graph):
        conv = GCNConv(5, 6, normalize=False, bias=False, rng=0)
        h = graph.x @ conv.weight.numpy()
        expected = h.copy()  # self loops
        for u, v in zip(graph.src, graph.dst):
            expected[v] += h[u]
        out = conv(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy()
        assert np.allclose(out, expected, atol=1e-10)

    def test_isolated_node_keeps_own_signal(self):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.eye(3))
        conv = GCNConv(3, 4, bias=False, rng=0)
        out = conv(Tensor(g.x), g.edge_index, g.num_nodes).numpy()
        # node 2 has no incoming data edges; output = self-loop only
        expected = (g.x @ conv.weight.numpy())[2]  # deg 1 → norm 1
        assert np.allclose(out[2], expected, atol=1e-10)


class TestGINManual:
    def test_matches_manual(self, graph):
        conv = GINConv(5, 6, rng=0)
        assert np.allclose(
            conv(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy(),
            manual_gin(conv, graph), atol=1e-10,
        )

    def test_eps_changes_self_weight_only(self, graph):
        conv = GINConv(5, 6, rng=0)
        conv.eps.data = np.array([1.0])
        out = conv(Tensor(graph.x), graph.edge_index, graph.num_nodes).numpy()
        assert np.allclose(out, manual_gin(conv, graph), atol=1e-10)
