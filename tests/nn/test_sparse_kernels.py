"""CSR kernel path vs. the dense-scatter reference backend.

The scipy backend (cached-CSR matmuls, fused gather_scatter) is the
engine's default; the numpy backend re-implements every op with
``np.add.at`` / ``np.maximum.at`` exactly as the pre-kernel code paths
did. This suite pins the two against each other through the full batched
forward for every conv and both masking semantics, and through the
edge-major / node-major scatter helpers directly — so a new backend (or a
kernel rewrite) has a complete equivalence oracle to clear.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph
from repro.nn import build_model
from repro.nn.batched import (
    scatter_edge_major,
    scatter_rows_np,
    segment_softmax_edge_major,
    segment_softmax_np,
)
from repro.nn.message_passing import num_layer_edges
from repro.sparse import use_backend

EQ_TOL = 1e-8


@pytest.fixture(scope="module")
def wheel_graph():
    rng = np.random.default_rng(7)
    edges = []
    n = 9
    for v in range(1, n):
        edges.append((0, v))
        edges.append((v, 0))
        edges.append((v, 1 + v % (n - 1)))
    edge_index = np.array(edges).T
    x = rng.normal(size=(n, 5))
    return Graph(edge_index=edge_index, x=x)


def _mask_stack(graph, num_layers, B, structural, seed=11):
    rng = np.random.default_rng(seed)
    width = num_layer_edges(graph.num_edges, graph.num_nodes)
    if structural:
        keeps = rng.random((B, graph.num_edges)) < 0.7
        stack = np.ones((B, num_layers, width))
        stack[:, :, :graph.num_edges] = keeps[:, None, :].astype(np.float64)
        return stack
    return rng.uniform(0.0, 1.0, size=(B, num_layers, width))


@pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
@pytest.mark.parametrize("structural", [False, True],
                         ids=["eq6", "structural"])
def test_batched_forward_backends_agree(wheel_graph, conv, structural):
    g = wheel_graph
    model = build_model(conv, "node", g.x.shape[1], 3, hidden=8, rng=0)
    model.eval()
    stack = _mask_stack(g, model.num_layers, B=6, structural=structural)

    with use_backend("scipy"):
        csr = model.forward_masked_batch(g, stack, structural=structural)
    with use_backend("numpy"):
        dense = model.forward_masked_batch(g, stack, structural=structural)
    np.testing.assert_allclose(csr, dense, rtol=0, atol=EQ_TOL)


@pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
@pytest.mark.parametrize("structural", [False, True],
                         ids=["eq6", "structural"])
def test_x_stack_forward_backends_agree(wheel_graph, conv, structural):
    """Per-row features exercise the non-shared (node-major B) path."""
    g = wheel_graph
    model = build_model(conv, "node", g.x.shape[1], 3, hidden=8, rng=1)
    model.eval()
    B = 4
    stack = _mask_stack(g, model.num_layers, B=B, structural=structural)
    rng = np.random.default_rng(23)
    x_stack = g.x[None] + 0.1 * rng.normal(size=(B,) + g.x.shape)

    with use_backend("scipy"):
        csr = model.forward_masked_batch(g, stack, structural=structural,
                                         x_stack=x_stack)
    with use_backend("numpy"):
        dense = model.forward_masked_batch(g, stack, structural=structural,
                                           x_stack=x_stack)
    np.testing.assert_allclose(csr, dense, rtol=0, atol=EQ_TOL)


class TestScatterHelpers:
    """Edge-major and batch-major helpers, both backends, same numbers."""

    @pytest.fixture()
    def scatter_inputs(self):
        rng = np.random.default_rng(3)
        index = rng.integers(0, 10, size=50)
        values = rng.normal(size=(4, 50, 6))  # (B, A, F)
        return index, values

    def test_scatter_layouts_and_backends_agree(self, scatter_inputs):
        index, values = scatter_inputs
        outs = []
        for backend in ("scipy", "numpy"):
            with use_backend(backend):
                batch_major = scatter_rows_np(values, index, 10)
                edge_major = scatter_edge_major(
                    np.ascontiguousarray(values.transpose(1, 0, 2)), index, 10
                )
            outs.append((batch_major, edge_major))
            np.testing.assert_allclose(
                batch_major, edge_major.transpose(1, 0, 2), rtol=0, atol=EQ_TOL
            )
        np.testing.assert_allclose(outs[0][0], outs[1][0], rtol=0, atol=EQ_TOL)

    @pytest.mark.parametrize("weighted", [False, True])
    def test_softmax_layouts_and_backends_agree(self, weighted):
        rng = np.random.default_rng(4)
        A, B, H, N = 40, 3, 2, 8
        segment_ids = rng.integers(0, N, size=A)
        scores = rng.normal(size=(B, A, H))
        weights = (rng.random((B, A)) < 0.8).astype(np.float64) if weighted else None
        outs = []
        for backend in ("scipy", "numpy"):
            with use_backend(backend):
                batch_major = segment_softmax_np(scores, segment_ids, N,
                                                 weights=weights)
                edge_major = segment_softmax_edge_major(
                    np.ascontiguousarray(scores.transpose(1, 0, 2)),
                    segment_ids, N,
                    weights=None if weights is None
                    else np.ascontiguousarray(weights.T),
                )
            outs.append(batch_major)
            np.testing.assert_allclose(
                batch_major, edge_major.transpose(1, 0, 2), rtol=0, atol=EQ_TOL
            )
        np.testing.assert_allclose(outs[0], outs[1], rtol=0, atol=EQ_TOL)
