"""Batched masked-forward engine vs. a loop of single forwards.

The engine's contract: ``GNN.forward_masked_batch(graph, mask_stack)``
equals stacking ``forward_graph`` calls with the same per-layer masks, for
every conv type and both tasks; structural binary masks reproduce
``Graph.with_edges`` removal exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, softmax
from repro.errors import ModelError, ShapeError
from repro.graph import Graph
from repro.nn import build_model
from repro.nn.message_passing import num_layer_edges


@pytest.fixture(scope="module")
def wheel_graph():
    """A hub-and-ring graph: enough structure for attention to matter."""
    rng = np.random.default_rng(7)
    edges = []
    n = 9
    for v in range(1, n):
        edges.append((0, v))
        edges.append((v, 0))
        edges.append((v, 1 + v % (n - 1)))
    edge_index = np.array(edges).T
    x = rng.normal(size=(n, 5))
    return Graph(edge_index=edge_index, x=x)


def _serial_logits(model, graph, masks_one):
    with no_grad():
        tensors = [Tensor(masks_one[l]) for l in range(masks_one.shape[0])]
        return model.forward_graph(graph, edge_masks=tensors).numpy()


@pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
@pytest.mark.parametrize("task", ["node", "graph"])
def test_batched_equals_single_forward_loop(wheel_graph, conv, task):
    g = wheel_graph
    model = build_model(conv, task, g.x.shape[1], 3, hidden=8, rng=0)
    model.eval()
    rng = np.random.default_rng(11)
    width = num_layer_edges(g.num_edges, g.num_nodes)
    B = 6
    stack = rng.uniform(0.0, 1.0, size=(B, model.num_layers, width))

    batched = model.forward_masked_batch(g, stack)
    serial = np.stack([_serial_logits(model, g, stack[b]) for b in range(B)])
    np.testing.assert_allclose(batched, serial, rtol=0, atol=1e-10)


@pytest.mark.parametrize("conv", ["gcn", "gin", "gat"])
@pytest.mark.parametrize("task", ["node", "graph"])
def test_structural_masks_equal_edge_removal(wheel_graph, conv, task):
    g = wheel_graph
    model = build_model(conv, task, g.x.shape[1], 3, hidden=8, rng=1)
    model.eval()
    rng = np.random.default_rng(3)
    width = num_layer_edges(g.num_edges, g.num_nodes)
    B = 5
    keeps = rng.random((B, g.num_edges)) < 0.7
    stack = np.ones((B, model.num_layers, width))
    stack[:, :, :g.num_edges] = keeps[:, None, :].astype(np.float64)

    batched = model.forward_masked_batch(g, stack, structural=True)
    for b in range(B):
        with no_grad():
            expected = model.forward_graph(g.with_edges(keeps[b])).numpy()
        np.testing.assert_allclose(batched[b], expected, rtol=0, atol=1e-10)


def test_predict_proba_batch_matches_softmax(wheel_graph):
    g = wheel_graph
    model = build_model("gcn", "node", g.x.shape[1], 3, hidden=8, rng=2)
    model.eval()
    rng = np.random.default_rng(5)
    width = num_layer_edges(g.num_edges, g.num_nodes)
    stack = rng.uniform(size=(4, model.num_layers, width))
    probs = model.predict_proba_batch(g, stack)
    logits = model.forward_masked_batch(g, stack)
    with no_grad():
        expected = softmax(Tensor(logits.reshape(-1, logits.shape[-1])), axis=-1).numpy()
    np.testing.assert_allclose(probs.reshape(-1, probs.shape[-1]), expected, atol=1e-12)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-10)


def test_x_stack_batches_feature_perturbations(wheel_graph):
    g = wheel_graph
    model = build_model("gin", "node", g.x.shape[1], 3, hidden=8, rng=4)
    model.eval()
    rng = np.random.default_rng(9)
    x_stack = g.x[None, :, :] * rng.uniform(0.0, 1.5, size=(3, g.num_nodes, 1))
    batched = model.forward_masked_batch(g, x_stack=x_stack)
    for b in range(3):
        work = g.copy()
        work.x = x_stack[b]
        with no_grad():
            expected = model.forward_graph(work).numpy()
        np.testing.assert_allclose(batched[b], expected, atol=1e-10)


def test_mask_stack_shape_validation(wheel_graph):
    g = wheel_graph
    model = build_model("gcn", "node", g.x.shape[1], 3, hidden=8, rng=0)
    model.eval()
    width = num_layer_edges(g.num_edges, g.num_nodes)
    with pytest.raises(ShapeError):
        model.forward_masked_batch(g, np.ones((2, model.num_layers, width - 1)))
    with pytest.raises(ShapeError):
        model.forward_masked_batch(g, np.ones((2, model.num_layers + 1, width)))
    with pytest.raises(ModelError):
        model.forward_masked_batch(g)  # neither masks nor features
