"""Visualization: flow tables, ASCII rendering, DOT export."""

import numpy as np
import pytest

from repro.errors import ExplainerError
from repro.explain.base import Explanation
from repro.flows import enumerate_flows
from repro.graph import Graph
from repro.viz import (
    explanation_summary,
    explanation_to_dot,
    format_flow_comparison,
    format_top_flows,
    render_explanation,
    to_dot,
)


@pytest.fixture
def graph():
    return Graph(edge_index=np.array([[0, 1, 2, 3], [1, 2, 3, 0]]),
                 x=np.ones((4, 2)), motif_edges={(0, 1), (1, 2)})


@pytest.fixture
def flow_explanation(graph):
    fi = enumerate_flows(graph, 2, target=2)
    scores = np.linspace(-0.5, 0.9, fi.num_flows)
    return Explanation(edge_scores=np.array([0.9, 0.8, 0.1, 0.2]),
                       predicted_class=1, method="revelio", target=2,
                       flow_scores=scores, flow_index=fi)


class TestFlowTables:
    def test_format_top_flows(self, flow_explanation):
        text = format_top_flows(flow_explanation, k=3)
        assert "Message Flow" in text
        assert "->" in text
        assert len(text.splitlines()) == 4  # header + 3 rows

    def test_title_included(self, flow_explanation):
        assert "[revelio]" in format_top_flows(flow_explanation, k=2, title="[revelio]")

    def test_scores_sorted_descending(self, flow_explanation):
        lines = format_top_flows(flow_explanation, k=5).splitlines()[1:]
        values = [float(l.rsplit(None, 1)[1]) for l in lines]
        assert values == sorted(values, reverse=True)

    def test_requires_flow_scores(self, graph):
        e = Explanation(edge_scores=np.zeros(4), predicted_class=0, method="gradcam")
        with pytest.raises(ExplainerError):
            format_top_flows(e)

    def test_comparison_side_by_side(self, flow_explanation):
        text = format_flow_comparison([flow_explanation, flow_explanation], k=2)
        assert text.count("|") >= 3
        assert "[revelio]" in text


class TestAsciiRendering:
    def test_render_marks_motif_edges(self, graph, flow_explanation):
        text = render_explanation(graph, flow_explanation, k=2)
        assert "**" in text  # top edges 0,1 are motif edges

    def test_render_reports_missed(self, graph):
        e = Explanation(edge_scores=np.array([0.0, 0.0, 0.9, 0.9]),
                        predicted_class=0, method="bad")
        text = render_explanation(graph, e, k=2)
        assert "missed motif edges" in text
        assert "!!" in text

    def test_render_all_recognized(self, graph):
        e = Explanation(edge_scores=np.array([0.9, 0.8, 0.0, 0.0]),
                        predicted_class=0, method="good")
        assert "all motif edges recognized" in render_explanation(graph, e, k=2)

    def test_summary_counts(self, graph, flow_explanation):
        summary = explanation_summary(graph, flow_explanation, k=2)
        assert summary["top_in_motif"] == 2
        assert summary["motif_size"] == 2

    def test_render_without_motif(self):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 1)))
        e = Explanation(edge_scores=np.array([0.5]), predicted_class=0, method="x")
        text = render_explanation(g, e, k=1)
        assert "0 -> 1" in text.replace("   ", " ").replace("  ", " ")


class TestDot:
    def test_to_dot_valid_structure(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "0 -> 1" in dot

    def test_motif_edges_dashed(self, graph):
        assert "style=dashed" in to_dot(graph)

    def test_highlighted_edges_bold(self, graph):
        dot = to_dot(graph, highlight_edges={0})
        assert "penwidth=2.5" in dot

    def test_explanation_to_dot_writes_file(self, graph, flow_explanation, tmp_path):
        path = tmp_path / "e.dot"
        dot = explanation_to_dot(graph, flow_explanation, k=2, path=path)
        assert path.read_text() == dot
        assert "digraph revelio" in dot

    def test_target_highlighted(self, graph, flow_explanation):
        dot = explanation_to_dot(graph, flow_explanation, k=1)
        assert "fillcolor" in dot
