"""Optimizer mechanics and convergence."""

import numpy as np
import pytest

from repro.autograd import SGD, Adam, Linear, Tensor
from repro.errors import AutogradError


def quadratic_problem():
    """min (x - 3)^2, solution x = 3."""
    x = Tensor(np.array([0.0]), requires_grad=True)

    def loss():
        return ((x - 3.0) ** 2).sum()

    return x, loss


class TestSGD:
    def test_converges_on_quadratic(self):
        x, loss = quadratic_problem()
        opt = SGD([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        assert x.numpy()[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            x, loss = quadratic_problem()
            opt = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                loss().backward()
                opt.step()
            return abs(x.numpy()[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        for _ in range(100):
            opt.zero_grad()
            (x * 0.0).sum().backward()  # zero data gradient
            opt.step()
        assert abs(x.numpy()[0]) < 1.0

    def test_skips_params_without_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([x], lr=0.1)
        opt.step()  # no backward happened
        assert x.numpy()[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(AutogradError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        x, loss = quadratic_problem()
        opt = Adam([x], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        assert x.numpy()[0] == pytest.approx(3.0, abs=1e-2)

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 1, rng=0)
        X = rng.normal(size=(128, 4))
        w_true = np.array([[1.0], [-1.0], [0.5], [2.0]])
        y = X @ w_true + 0.3
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            ((lin(Tensor(X)) - Tensor(y)) ** 2).mean().backward()
            opt.step()
        assert np.allclose(lin.weight.numpy(), w_true, atol=1e-2)
        assert lin.bias.numpy()[0] == pytest.approx(0.3, abs=1e-2)

    def test_bias_correction_first_step(self):
        # With bias correction, the first Adam step ≈ lr * sign(grad).
        x = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.zero_grad()
        (x * 5.0).sum().backward()
        opt.step()
        assert x.numpy()[0] == pytest.approx(-0.1, abs=1e-6)

    def test_weight_decay(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = Adam([x], lr=0.5, weight_decay=1.0)
        for _ in range(100):
            opt.zero_grad()
            (x * 0.0).sum().backward()
            opt.step()
        assert abs(x.numpy()[0]) < 1.0

    def test_zero_grad_resets(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        (x * 2).sum().backward()
        opt.zero_grad()
        assert x.grad is None
