"""Property-based gradient verification with hypothesis.

Random expression trees over the core op set must always match central
finite differences — the strongest invariant a hand-written autograd
engine can offer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients, log_softmax, softmax

SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))


def arrays(shape, seed, lo=-2.0, hi=2.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, size=shape)


@settings(max_examples=30, deadline=None)
@given(shape=SHAPES, seed=st.integers(0, 10_000))
def test_elementwise_chain_gradients(shape, seed):
    a = Tensor(arrays(shape, seed), requires_grad=True)
    b = Tensor(arrays(shape, seed + 1), requires_grad=True)
    check_gradients(lambda: ((a * b + a).tanh().sigmoid() * 2.0 - b).sum(), [a, b],
                    atol=1e-4, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 5), m=st.integers(1, 5), k=st.integers(1, 5),
       seed=st.integers(0, 10_000))
def test_matmul_gradients(n, m, k, seed):
    a = Tensor(arrays((n, m), seed), requires_grad=True)
    b = Tensor(arrays((m, k), seed + 1), requires_grad=True)
    check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b], atol=1e-4, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(shape=SHAPES, seed=st.integers(0, 10_000))
def test_broadcast_add_gradients(shape, seed):
    a = Tensor(arrays(shape, seed), requires_grad=True)
    b = Tensor(arrays((shape[1],), seed + 1), requires_grad=True)
    check_gradients(lambda: ((a + b) * (a - b)).sum(), [a, b], atol=1e-4, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), c=st.integers(2, 5), seed=st.integers(0, 10_000))
def test_softmax_rows_always_normalized(n, c, seed):
    x = Tensor(arrays((n, c), seed, lo=-50, hi=50))
    out = softmax(x).numpy()
    assert np.allclose(out.sum(axis=-1), 1.0)
    assert (out >= 0).all()


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 6), c=st.integers(2, 5), seed=st.integers(0, 10_000))
def test_log_softmax_upper_bound(n, c, seed):
    x = Tensor(arrays((n, c), seed, lo=-20, hi=20))
    assert (log_softmax(x).numpy() <= 1e-12).all()


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(2, 6), cols=st.integers(1, 4),
       n_idx=st.integers(1, 10), seed=st.integers(0, 10_000))
def test_gather_scatter_gradients(rows, cols, n_idx, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(arrays((rows, cols), seed), requires_grad=True)
    idx = rng.integers(0, rows, size=n_idx)
    out_idx = rng.integers(0, 3, size=n_idx)
    check_gradients(lambda: (a.gather_rows(idx).scatter_add(out_idx, 3) ** 2).sum(),
                    [a], atol=1e-4, rtol=1e-3)


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(1, 5), cols=st.integers(1, 5), seed=st.integers(0, 10_000))
def test_sum_equals_manual(rows, cols, seed):
    data = arrays((rows, cols), seed)
    t = Tensor(data)
    assert t.sum().item() == np.sum(data)
    assert np.allclose(t.sum(axis=0).numpy(), data.sum(axis=0))
    assert np.allclose(t.mean(axis=1).numpy(), data.mean(axis=1))
