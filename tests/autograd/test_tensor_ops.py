"""Per-operation gradient checks and shape semantics for the Tensor type."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, concat, stack, where
from repro.errors import AutogradError, ShapeError


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestArithmetic:
    def test_add_grad(self):
        a, b = t((3, 4)), t((3, 4), seed=1)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast_grad(self):
        a, b = t((3, 4)), t((4,), seed=1)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_scalar(self):
        a = t((2, 2))
        out = a + 3.0
        assert np.allclose(out.numpy(), a.numpy() + 3.0)

    def test_radd(self):
        a = t((2,))
        assert np.allclose((1.0 + a).numpy(), a.numpy() + 1.0)

    def test_sub_grad(self):
        a, b = t((3,)), t((3,), seed=1)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_rsub(self):
        a = t((3,))
        assert np.allclose((2.0 - a).numpy(), 2.0 - a.numpy())

    def test_mul_grad(self):
        a, b = t((2, 3)), t((2, 3), seed=1)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_column(self):
        a, b = t((4, 3)), t((4, 1), seed=1)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div_grad(self):
        a = t((3, 2))
        b = Tensor(np.random.default_rng(1).uniform(0.5, 2.0, (3, 2)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_rtruediv(self):
        b = Tensor(np.array([1.0, 2.0, 4.0]), requires_grad=True)
        check_gradients(lambda: (1.0 / b).sum(), [b])

    def test_neg_grad(self):
        a = t((5,))
        check_gradients(lambda: (-a).sum(), [a])

    def test_pow_grad(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_pow_tensor_exponent_rejected(self):
        a, b = t((2,)), t((2,))
        with pytest.raises(AutogradError):
            a ** b

    def test_matmul_grad(self):
        a, b = t((3, 4)), t((4, 2), seed=1)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_shape_error(self):
        a, b = t((3,)), t((3, 2))
        with pytest.raises(ShapeError):
            a @ b

    def test_numpy_defers_to_tensor(self):
        a = t((3,))
        out = np.ones(3) * a
        assert isinstance(out, Tensor)


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "softplus", "abs"])
    def test_unary_grads(self, op):
        a = t((3, 3), scale=0.8)
        check_gradients(lambda: getattr(a, op)().sum(), [a])

    def test_log_grad(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 3.0, (4,)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt_grad(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 3.0, (4,)), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_relu_values(self):
        a = Tensor(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(a.relu().numpy(), [0.0, 0.0, 2.0])

    def test_relu_grad_away_from_kink(self):
        a = Tensor(np.array([-2.0, -0.5, 0.7, 3.0]), requires_grad=True)
        check_gradients(lambda: a.relu().sum(), [a])

    def test_leaky_relu_values(self):
        a = Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(a.leaky_relu(0.1).numpy(), [-0.1, 2.0])

    def test_leaky_relu_grad(self):
        a = Tensor(np.array([-2.0, -0.5, 0.7, 3.0]), requires_grad=True)
        check_gradients(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-1000.0, 1000.0]))
        out = a.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        assert out[0] < 1e-100 and out[1] == pytest.approx(1.0)

    def test_softplus_matches_reference(self):
        a = Tensor(np.array([-3.0, 0.0, 3.0]))
        assert np.allclose(a.softplus().numpy(), np.log1p(np.exp([-3.0, 0.0, 3.0])))

    def test_clip_grad_masks_outside(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all_grad(self):
        a = t((3, 4))
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis_grad(self):
        a = t((3, 4))
        check_gradients(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims_shape(self):
        a = t((3, 4))
        assert a.sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean_value(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.mean().item() == pytest.approx(2.5)

    def test_mean_axis_grad(self):
        a = t((4, 5))
        check_gradients(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_mean_tuple_axis(self):
        a = t((2, 3, 4))
        assert a.mean(axis=(0, 1)).shape == (4,)

    def test_max_value(self):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert np.allclose(a.max(axis=1).numpy(), [5.0, 3.0])

    def test_max_grad_unique(self):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_max_grad_ties_split(self):
        a = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])


class TestShapes:
    def test_reshape_grad(self):
        a = t((2, 6))
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_reshape_tuple_arg(self):
        a = t((2, 6))
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_flatten(self):
        a = t((2, 3))
        assert a.flatten().shape == (6,)

    def test_transpose_grad(self):
        a = t((2, 3))
        check_gradients(lambda: (a.T ** 2).sum(), [a])

    def test_transpose_axes_grad(self):
        a = t((2, 3, 4))
        check_gradients(lambda: (a.transpose((2, 0, 1)) ** 2).sum(), [a])

    def test_getitem_row(self):
        a = t((4, 3))
        check_gradients(lambda: (a[1] ** 2).sum(), [a])

    def test_getitem_fancy(self):
        a = t((5, 2))
        idx = np.array([0, 0, 3])
        check_gradients(lambda: (a[idx] ** 2).sum(), [a])

    def test_getitem_2d_index(self):
        a = t((3, 4))
        check_gradients(lambda: a[np.arange(3), np.array([0, 2, 1])].sum(), [a])


class TestGatherScatter:
    def test_gather_rows_grad_with_repeats(self):
        a = t((4, 3))
        idx = np.array([0, 2, 2, 1, 0])
        check_gradients(lambda: (a.gather_rows(idx) ** 2).sum(), [a])

    def test_scatter_add_values(self):
        a = Tensor(np.ones((4, 2)))
        out = a.scatter_add(np.array([0, 0, 1, 3]), 4)
        assert np.allclose(out.numpy(), [[2, 2], [1, 1], [0, 0], [1, 1]])

    def test_scatter_add_grad(self):
        a = t((5, 2))
        idx = np.array([0, 1, 1, 2, 0])
        check_gradients(lambda: (a.scatter_add(idx, 3) ** 2).sum(), [a])

    def test_scatter_add_index_mismatch(self):
        a = t((4, 2))
        with pytest.raises(ShapeError):
            a.scatter_add(np.array([0, 1]), 3)

    def test_gather_then_scatter_roundtrip(self):
        a = t((3, 2))
        idx = np.arange(3)
        out = a.gather_rows(idx).scatter_add(idx, 3)
        assert np.allclose(out.numpy(), a.numpy())


class TestCombinators:
    def test_concat_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((3, 2)))
        assert concat([a, b]).shape == (5, 2)

    def test_concat_grad(self):
        a, b = t((2, 3)), t((4, 3), seed=1)
        check_gradients(lambda: (concat([a, b]) ** 2).sum(), [a, b])

    def test_concat_axis1_grad(self):
        a, b = t((2, 3)), t((2, 2), seed=1)
        check_gradients(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_grad(self):
        a, b = t((3,)), t((3,), seed=1)
        check_gradients(lambda: (stack([a, b]) ** 2).sum(), [a, b])

    def test_stack_new_axis(self):
        a, b = t((2, 3)), t((2, 3))
        assert stack([a, b], axis=1).shape == (2, 2, 3)

    def test_where_values(self):
        cond = np.array([True, False, True])
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        assert np.allclose(where(cond, a, b).numpy(), [1, 0, 1])

    def test_where_grad(self):
        cond = np.array([True, False, True, False])
        a, b = t((4,)), t((4,), seed=1)
        check_gradients(lambda: (where(cond, a, b) ** 2).sum(), [a, b])


class TestMisc:
    def test_item_scalar(self):
        assert Tensor(np.array(3.0)).item() == 3.0

    def test_item_nonscalar_raises(self):
        with pytest.raises(AutogradError):
            Tensor(np.ones(3)).item()

    def test_comparisons_return_numpy(self):
        a = Tensor(np.array([1.0, 3.0]))
        assert (a > 2.0).dtype == bool
        assert (a < Tensor(np.array([2.0, 2.0]))).tolist() == [True, False]

    def test_detach_cuts_tape(self):
        a = t((2,))
        d = (a * 2).detach()
        assert not d.requires_grad

    def test_copy_is_deep(self):
        a = Tensor(np.ones(2))
        c = a.copy()
        c.data[0] = 5.0
        assert a.numpy()[0] == 1.0

    def test_len_and_repr(self):
        a = Tensor(np.ones((4, 2)), name="weights")
        assert len(a) == 4
        assert "weights" in repr(a)
