"""Learning-rate schedulers."""

import numpy as np
import pytest

from repro.errors import AutogradError
from repro.autograd import (
    SGD,
    Adam,
    CosineAnnealingLR,
    LinearWarmup,
    StepLR,
    Tensor,
)


def make_opt(lr=1.0):
    return Adam([Tensor(np.zeros(2), requires_grad=True)], lr=lr)


class TestStepLR:
    def test_halves_at_boundaries(self):
        sched = StepLR(make_opt(), step_size=10, gamma=0.5)
        lrs = [sched.step() for _ in range(25)]
        assert lrs[8] == 1.0
        assert lrs[10] == 0.5  # epoch 11
        assert lrs[20] == 0.25

    def test_applies_to_optimizer(self):
        opt = make_opt()
        sched = StepLR(opt, step_size=1, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(AutogradError):
            StepLR(make_opt(), step_size=0)


class TestCosine:
    def test_endpoints(self):
        sched = CosineAnnealingLR(make_opt(), total_epochs=100, min_lr=0.1)
        first = sched.compute_lr(0)
        last = sched.compute_lr(100)
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_opt(), total_epochs=50)
        lrs = [sched.step() for _ in range(50)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs[:-1], lrs[1:]))

    def test_clamps_past_horizon(self):
        sched = CosineAnnealingLR(make_opt(), total_epochs=10, min_lr=0.2)
        for _ in range(20):
            lr = sched.step()
        assert lr == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(AutogradError):
            CosineAnnealingLR(make_opt(), total_epochs=0)


class TestWarmup:
    def test_linear_ramp(self):
        sched = LinearWarmup(make_opt(), warmup_epochs=4)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_flat_after_warmup(self):
        sched = LinearWarmup(make_opt(), warmup_epochs=2)
        for _ in range(5):
            lr = sched.step()
        assert lr == pytest.approx(1.0)

    def test_chained_scheduler(self):
        opt = make_opt()
        sched = LinearWarmup(opt, warmup_epochs=2,
                             after=StepLR(opt, step_size=1, gamma=0.5))
        lrs = [sched.step() for _ in range(4)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[2] == pytest.approx(0.5)   # StepLR epoch 1
        assert lrs[3] == pytest.approx(0.25)  # StepLR epoch 2

    def test_validation(self):
        with pytest.raises(AutogradError):
            LinearWarmup(make_opt(), warmup_epochs=0)


class TestIntegration:
    def test_scheduled_training_converges(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([x], lr=0.5)
        sched = CosineAnnealingLR(opt, total_epochs=100, min_lr=0.01)
        for _ in range(100):
            opt.zero_grad()
            ((x - 3.0) ** 2).sum().backward()
            opt.step()
            sched.step()
        assert x.numpy()[0] == pytest.approx(3.0, abs=1e-2)
