"""Tape mechanics: accumulation, reuse, no_grad, retain_grad, deep chains."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad
from repro.errors import AutogradError


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        a = Tensor(np.ones(2))
        with pytest.raises(AutogradError):
            a.backward()
        with pytest.raises(AutogradError):
            a.sum().backward()  # inert tape

    def test_backward_nonscalar_needs_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AutogradError):
            (a * 2).backward()

    def test_backward_explicit_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).backward(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(a.grad, [2.0, 4.0, 6.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.ones(2), requires_grad=True)
        a.sum().backward()
        a.sum().backward()
        assert np.allclose(a.grad, [2.0, 2.0])

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        a.sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_reuse_accumulates(self):
        # a used twice: gradient contributions must add.
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a * 3.0
        out.sum().backward()
        assert np.allclose(a.grad, [2 * 2.0 + 3.0])

    def test_shared_subexpression(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = a * 2
        out = (b + b).sum()
        out.backward()
        assert np.allclose(a.grad, [4.0, 4.0])

    def test_long_chain_no_recursion_error(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(5000):
            x = x + 1.0
        x.sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_constant_branch_gets_no_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        c = Tensor(np.ones(2))
        (a * c).sum().backward()
        assert c.grad is None


class TestNoGrad:
    def test_no_grad_disables_tape(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_tensor_created_inside_no_grad_is_inert(self):
        with no_grad():
            a = Tensor(np.ones(2), requires_grad=True)
        assert not a.requires_grad


class TestRetainGrad:
    def test_interior_grad_absent_by_default(self):
        a = Tensor(np.ones(2), requires_grad=True)
        mid = a * 2
        mid.sum().backward()
        assert mid.grad is None

    def test_retain_grad_populates_interior(self):
        a = Tensor(np.ones(2), requires_grad=True)
        mid = (a * 2).retain_grad()
        (mid * 3).sum().backward()
        assert np.allclose(mid.grad, [3.0, 3.0])
        assert np.allclose(a.grad, [6.0, 6.0])

    def test_retain_grad_returns_self(self):
        a = Tensor(np.ones(1), requires_grad=True)
        assert a.retain_grad() is a
