"""Module / Parameter mechanics: discovery, state dicts, freeze, modes."""

import numpy as np
import pytest

from repro.autograd import MLP, Linear, Module, Parameter, ReLU, Sequential, Tensor
from repro.errors import AutogradError, ModelError


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=0)
        self.fc2 = Linear(8, 2, rng=1)
        self.blocks = [Linear(2, 2, rng=2), Linear(2, 2, rng=3)]
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        h = self.fc1(x).relu()
        h = self.fc2(h)
        for b in self.blocks:
            h = b(h)
        return h * self.scale


class TestDiscovery:
    def test_parameters_found_recursively(self):
        net = Net()
        # fc1 (w+b), fc2 (w+b), 2 blocks (w+b each), scale = 9
        assert len(net.parameters()) == 9

    def test_named_parameters_dotted(self):
        names = {n for n, _ in Net().named_parameters()}
        assert "fc1.weight" in names
        assert "blocks.0.weight" in names
        assert "scale" in names

    def test_modules_iteration(self):
        net = Net()
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Linear") == 4

    def test_list_nested_params(self):
        net = Net()
        assert any(n.startswith("blocks.1") for n, _ in net.named_parameters())


class TestState:
    def test_state_dict_roundtrip(self):
        net1, net2 = Net(), Net()
        x = np.random.default_rng(0).normal(size=(3, 4))
        net2.load_state_dict(net1.state_dict())
        assert np.allclose(net1(Tensor(x)).numpy(), net2(Tensor(x)).numpy())

    def test_state_dict_copies(self):
        net = Net()
        state = net.state_dict()
        state["scale"][0] = 99.0
        assert net.scale.numpy()[0] == 1.0

    def test_load_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(ModelError):
            net.load_state_dict(state)

    def test_load_unexpected_key_raises(self):
        net = Net()
        state = net.state_dict()
        state["bogus"] = np.ones(1)
        with pytest.raises(ModelError):
            net.load_state_dict(state)

    def test_load_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ModelError):
            net.load_state_dict(state)


class TestModes:
    def test_train_eval_propagate(self):
        net = Net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_freeze_unfreeze(self):
        net = Net()
        net.freeze()
        assert all(not p.requires_grad for p in net.parameters())
        net.unfreeze()
        assert all(p.requires_grad for p in net.parameters())

    def test_frozen_net_builds_no_tape(self):
        net = Net().freeze()
        out = net(Tensor(np.ones((2, 4))))
        assert not out.requires_grad

    def test_zero_grad_clears(self):
        net = Net()
        net(Tensor(np.ones((2, 4)))).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes(self):
        lin = Linear(3, 5, rng=0)
        assert lin(Tensor(np.ones((7, 3)))).shape == (7, 5)

    def test_linear_no_bias(self):
        lin = Linear(3, 5, bias=False, rng=0)
        assert lin.bias is None
        assert lin(Tensor(np.zeros((2, 3)))).numpy().sum() == 0.0

    def test_sequential_order(self):
        seq = Sequential(Linear(2, 2, rng=0), ReLU())
        out = seq(Tensor(np.ones((1, 2))))
        assert (out.numpy() >= 0).all()
        assert len(seq) == 2

    def test_mlp_depth(self):
        mlp = MLP([4, 8, 8, 2], rng=0)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_mlp_needs_two_dims(self):
        with pytest.raises(AutogradError):
            MLP([4])

    def test_mlp_final_activation(self):
        from repro.autograd import Sigmoid

        mlp = MLP([2, 2], rng=0, final_activation=Sigmoid())
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(5, 2)))).numpy()
        assert ((out > 0) & (out < 1)).all()

    def test_layernorm_normalizes(self):
        from repro.autograd import LayerNorm

        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(0).normal(2.0, 3.0, (5, 8)))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)
