"""Gradient checks for the plan-backed message-passing primitives.

Every registered sparse backend (scipy always; numpy always; numba where
installed) must produce forward values and backward gradients that match
the ``np.add.at`` dense-scatter oracle to 1e-8 and the finite-difference
estimate, including the degenerate plans training actually hits: empty
segments (isolated nodes) and duplicated indices (multi-edges).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, segment_softmax, spmm
from repro.sparse import SegmentPlan, available_backends, feature_csr, use_backend

PARITY_TOL = 1e-8

#: (index, num_rows) plans covering the shapes training dispatches over:
#: a dense happy path, empty segments at both ends, duplicate indices
#: hammering one row, and a single-item edge case.
PLANS = {
    "dense": (np.array([2, 0, 1, 2, 0, 1, 2, 1]), 3),
    "empty_segments": (np.array([1, 1, 3, 3, 3]), 6),
    "duplicates": (np.array([0, 0, 0, 0, 2]), 4),
    "single": (np.array([0]), 1),
}


def backends() -> list[str]:
    # Every registered backend, numba included wherever it is installed.
    # The numpy backend *is* the oracle, so its parity cases are identity
    # checks — kept anyway so its gradients are finite-difference-checked
    # like the others.
    return list(available_backends())


def oracle_scatter(values: np.ndarray, index: np.ndarray, num_rows: int) -> np.ndarray:
    out = np.zeros((num_rows,) + values.shape[1:])
    np.add.at(out, index, values)
    return out


@pytest.fixture(params=sorted(PLANS))
def plan_case(request):
    index, num_rows = PLANS[request.param]
    return np.asarray(index, dtype=np.int64), num_rows


@pytest.fixture(params=backends())
def backend(request):
    return request.param


class TestScatterAddParity:
    def test_forward_matches_oracle(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(0)
        values = rng.normal(size=(index.shape[0], 3))
        with use_backend(backend):
            out = Tensor(values).scatter_add(index, num_rows).numpy()
        assert np.abs(out - oracle_scatter(values, index, num_rows)).max() < PARITY_TOL

    def test_backward_matches_oracle(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(1)
        x_plan = Tensor(rng.normal(size=(index.shape[0], 2)), requires_grad=True)
        x_dense = Tensor(x_plan.data.copy(), requires_grad=True)
        weights = rng.normal(size=(num_rows, 2))
        with use_backend(backend):
            (x_plan.scatter_add(index, num_rows) * Tensor(weights)).sum().backward()
        with use_backend("numpy"):
            (x_dense.scatter_add(index, num_rows) * Tensor(weights)).sum().backward()
        assert np.abs(x_plan.grad - x_dense.grad).max() < PARITY_TOL

    def test_gradcheck(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(index.shape[0], 2)), requires_grad=True)
        weights = Tensor(rng.normal(size=(num_rows, 2)))
        with use_backend(backend):
            check_gradients(
                lambda: (x.scatter_add(index, num_rows) * weights).sum(), [x])

    def test_explicit_plan_matches_memoized(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(3)
        values = rng.normal(size=(index.shape[0], 2))
        plan = SegmentPlan(index, num_rows)
        with use_backend(backend):
            explicit = Tensor(values).scatter_add(index, num_rows, plan=plan)
            memoized = Tensor(values).scatter_add(index, num_rows)
        assert np.array_equal(explicit.numpy(), memoized.numpy())


class TestGatherRowsParity:
    def test_backward_matches_oracle(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(4)
        x_plan = Tensor(rng.normal(size=(num_rows, 3)), requires_grad=True)
        x_dense = Tensor(x_plan.data.copy(), requires_grad=True)
        weights = rng.normal(size=(index.shape[0], 3))
        # The adjoint of a gather is a scatter-add over the same index —
        # exactly the op whose backend dispatch is under test.
        with use_backend(backend):
            (x_plan.gather_rows(index) * Tensor(weights)).sum().backward()
        with use_backend("numpy"):
            (x_dense.gather_rows(index) * Tensor(weights)).sum().backward()
        assert np.abs(x_plan.grad - x_dense.grad).max() < PARITY_TOL

    def test_gradcheck(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(num_rows, 2)), requires_grad=True)
        weights = Tensor(rng.normal(size=(index.shape[0], 2)))
        with use_backend(backend):
            check_gradients(
                lambda: (x.gather_rows(index) * weights).sum(), [x])


class TestSegmentSoftmaxParity:
    def test_forward_and_backward_match_oracle(self, plan_case, backend):
        index, num_rows = plan_case
        rng = np.random.default_rng(6)
        s_plan = Tensor(rng.normal(size=(index.shape[0], 2)), requires_grad=True)
        s_dense = Tensor(s_plan.data.copy(), requires_grad=True)
        weights = rng.normal(size=(index.shape[0], 2))

        with use_backend(backend):
            out_plan = segment_softmax(s_plan, index, num_rows)
            (out_plan * Tensor(weights)).sum().backward()
        with use_backend("numpy"):
            out_dense = segment_softmax(s_dense, index, num_rows)
            (out_dense * Tensor(weights)).sum().backward()
        assert np.abs(out_plan.numpy() - out_dense.numpy()).max() < PARITY_TOL
        assert np.abs(s_plan.grad - s_dense.grad).max() < PARITY_TOL

    def test_rows_sum_to_one_per_segment(self, backend):
        index, num_rows = PLANS["dense"]
        rng = np.random.default_rng(7)
        with use_backend(backend):
            out = segment_softmax(Tensor(rng.normal(size=index.shape[0])),
                                  index, num_rows).numpy()
        sums = oracle_scatter(out[:, None], index, num_rows)[:, 0]
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_gradcheck(self, backend):
        index, num_rows = PLANS["duplicates"]
        rng = np.random.default_rng(8)
        s = Tensor(rng.normal(size=(index.shape[0],)), requires_grad=True)
        weights = Tensor(rng.normal(size=(index.shape[0],)))
        with use_backend(backend):
            check_gradients(
                lambda: (segment_softmax(s, index, num_rows) * weights).sum(), [s])


class TestSpmmParity:
    @staticmethod
    def operators():
        import scipy.sparse as sp

        rng = np.random.default_rng(9)
        dense = (rng.random((5, 4)) < 0.5) * rng.normal(size=(5, 4))
        matrix = sp.csr_matrix(dense)
        return matrix, sp.csr_matrix(matrix.T)

    def test_forward_and_backward_match_oracle(self, backend):
        matrix, matrix_t = self.operators()
        rng = np.random.default_rng(10)
        x_plan = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        x_dense = Tensor(x_plan.data.copy(), requires_grad=True)
        weights = rng.normal(size=(5, 3))

        with use_backend(backend):
            out_plan = spmm(x_plan, matrix, matrix_t)
            (out_plan * Tensor(weights)).sum().backward()
        with use_backend("numpy"):
            out_dense = spmm(x_dense, matrix, matrix_t)
            (out_dense * Tensor(weights)).sum().backward()
        assert np.abs(out_plan.numpy() - (matrix @ x_plan.data)).max() < PARITY_TOL
        assert np.abs(out_plan.numpy() - out_dense.numpy()).max() < PARITY_TOL
        assert np.abs(x_plan.grad - x_dense.grad).max() < PARITY_TOL

    def test_gradcheck(self, backend):
        matrix, matrix_t = self.operators()
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        weights = Tensor(rng.normal(size=(5, 2)))
        with use_backend(backend):
            check_gradients(
                lambda: (spmm(x, matrix, matrix_t) * weights).sum(), [x])


class TestSparseFeatureMatmul:
    """The annotate_sparse fast path for constant-feature weight GEMMs."""

    def features(self):
        rng = np.random.default_rng(12)
        x = (rng.random((20, 15)) < 0.03).astype(np.float64)
        return x, feature_csr(x)

    def test_forward_and_weight_grad_match_dense(self):
        x, twin = self.features()
        rng = np.random.default_rng(13)
        w_fast = Tensor(rng.normal(size=(15, 4)), requires_grad=True)
        w_dense = Tensor(w_fast.data.copy(), requires_grad=True)
        weights = rng.normal(size=(20, 4))

        out_fast = Tensor(x).annotate_sparse(*twin) @ w_fast
        (out_fast * Tensor(weights)).sum().backward()
        out_dense = Tensor(x) @ w_dense
        (out_dense * Tensor(weights)).sum().backward()

        assert np.abs(out_fast.numpy() - out_dense.numpy()).max() < PARITY_TOL
        assert np.abs(w_fast.grad - w_dense.grad).max() < PARITY_TOL

    def test_gradcheck(self):
        x, twin = self.features()
        rng = np.random.default_rng(14)
        w = Tensor(rng.normal(size=(15, 3)), requires_grad=True)
        annotated = Tensor(x).annotate_sparse(*twin)
        check_gradients(lambda: ((annotated @ w) ** 2).sum(), [w])

    def test_grad_requiring_operand_falls_back_to_dense_path(self):
        x, twin = self.features()
        rng = np.random.default_rng(15)
        lhs = Tensor(x, requires_grad=True).annotate_sparse(*twin)
        w = Tensor(rng.normal(size=(15, 3)), requires_grad=True)
        upstream = rng.normal(size=(20, 3))
        (lhs @ w).backward(upstream)
        # The CSR twin cannot produce dX, so the dense path must run and
        # feed both parents.
        assert np.abs(lhs.grad - upstream @ w.data.T).max() < PARITY_TOL
        assert np.abs(w.grad - x.T @ upstream).max() < PARITY_TOL
