"""Functional ops: softmax family, losses, segment softmax, dropout."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    binary_cross_entropy,
    check_gradients,
    cross_entropy,
    dropout,
    log_softmax,
    nll_loss,
    one_hot,
    segment_softmax,
    softmax,
)
from repro.errors import AutogradError, ShapeError


def t(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(t((4, 5))).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_large_logits_stable(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0, -1000.0]]))).numpy()
        assert np.allclose(out, [[0.5, 0.5, 0.0]])

    def test_grad(self):
        a = t((3, 4))
        check_gradients(lambda: (softmax(a) ** 2).sum(), [a])

    def test_log_softmax_consistency(self):
        a = t((3, 4))
        assert np.allclose(log_softmax(a).numpy(), np.log(softmax(a).numpy()))

    def test_log_softmax_grad(self):
        a = t((2, 5))
        check_gradients(lambda: log_softmax(a).sum(), [a])

    def test_softmax_axis0(self):
        out = softmax(t((3, 4)), axis=0).numpy()
        assert np.allclose(out.sum(axis=0), 1.0)


class TestLosses:
    def test_nll_matches_manual(self):
        logp = log_softmax(t((4, 3)))
        labels = np.array([0, 2, 1, 1])
        expected = -logp.numpy()[np.arange(4), labels].mean()
        assert nll_loss(logp, labels).item() == pytest.approx(expected)

    def test_nll_reductions(self):
        logp = log_softmax(t((4, 3)))
        labels = np.array([0, 2, 1, 1])
        none = nll_loss(logp, labels, reduction="none")
        assert none.shape == (4,)
        assert nll_loss(logp, labels, reduction="sum").item() == pytest.approx(none.numpy().sum())

    def test_nll_bad_reduction(self):
        with pytest.raises(AutogradError):
            nll_loss(log_softmax(t((2, 2))), np.array([0, 1]), reduction="bogus")

    def test_nll_shape_error(self):
        with pytest.raises(ShapeError):
            nll_loss(Tensor(np.ones(3)), np.array([0]))

    def test_cross_entropy_grad(self):
        logits = t((5, 4))
        labels = np.array([0, 1, 2, 3, 0])
        check_gradients(lambda: cross_entropy(logits, labels), [logits])

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]), requires_grad=True)
        assert cross_entropy(logits, np.array([0, 1])).item() == pytest.approx(0.0, abs=1e-6)

    def test_bce_matches_manual(self):
        p = Tensor(np.array([0.9, 0.2]), requires_grad=True)
        y = np.array([1.0, 0.0])
        expected = -(np.log(0.9) + np.log(0.8)) / 2
        assert binary_cross_entropy(p, y).item() == pytest.approx(expected)

    def test_bce_clips_extremes(self):
        p = Tensor(np.array([0.0, 1.0]))
        val = binary_cross_entropy(p, np.array([1.0, 0.0])).item()
        assert np.isfinite(val)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestSegmentSoftmax:
    def test_segments_sum_to_one(self):
        scores = t((6,))
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = segment_softmax(scores, seg, 3).numpy()
        for s in range(3):
            assert out[seg == s].sum() == pytest.approx(1.0)

    def test_multihead_segments(self):
        scores = t((6, 4))
        seg = np.array([0, 0, 0, 1, 1, 2])
        out = segment_softmax(scores, seg, 3).numpy()
        assert np.allclose(out[seg == 0].sum(axis=0), 1.0)

    def test_grad(self):
        scores = t((5, 2))
        seg = np.array([0, 0, 1, 1, 1])
        check_gradients(lambda: (segment_softmax(scores, seg, 2) ** 2).sum(), [scores])

    def test_singleton_segment_is_one(self):
        scores = Tensor(np.array([5.0]))
        out = segment_softmax(scores, np.array([0]), 1).numpy()
        assert out[0] == pytest.approx(1.0)

    def test_empty_segment_tolerated(self):
        scores = Tensor(np.array([1.0, 2.0]))
        out = segment_softmax(scores, np.array([0, 0]), 3).numpy()
        assert np.isfinite(out).all()

    def test_extreme_logits_stable(self):
        scores = Tensor(np.array([800.0, -800.0, 800.0]))
        out = segment_softmax(scores, np.array([0, 0, 1]), 2).numpy()
        assert np.isfinite(out).all()


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_p_identity(self, rng):
        x = Tensor(np.ones(4))
        assert dropout(x, 0.0, rng) is x

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, rng).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_p(self, rng):
        with pytest.raises(AutogradError):
            dropout(Tensor(np.ones(2)), 1.0, rng)
