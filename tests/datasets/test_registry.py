"""Dataset registry and base-class behaviour."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    GraphDataset,
    NodeDataset,
    dataset_task,
    default_scale,
    load_dataset,
)
from repro.errors import DatasetError


class TestRegistry:
    def test_all_eight_paper_datasets(self):
        assert set(DATASET_NAMES) == {
            "cora", "citeseer", "pubmed", "ba_shapes", "tree_cycles",
            "mutag", "bbbp", "ba_2motifs",
        }

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_case_and_hyphen_insensitive(self):
        ds = load_dataset("BA-Shapes", scale=0.12, seed=0)
        assert ds.name == "ba_shapes"

    def test_tasks(self):
        assert dataset_task("cora") == "node"
        assert dataset_task("mutag") == "graph"
        with pytest.raises(DatasetError):
            dataset_task("bogus")

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.42")
        assert default_scale() == 0.42

    def test_load_uses_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.12")
        small = load_dataset("tree_cycles", seed=0)
        big = load_dataset("tree_cycles", scale=0.5, seed=0)
        assert small.graph.num_nodes < big.graph.num_nodes


class TestSampling:
    def test_node_targets_in_range(self):
        ds = load_dataset("tree_cycles", scale=0.12, seed=0)
        targets = ds.sample_targets(10, rng=0)
        assert ((0 <= targets) & (targets < ds.graph.num_nodes)).all()

    def test_motif_only_targets(self):
        ds = load_dataset("ba_shapes", scale=0.12, seed=0)
        targets = ds.sample_targets(10, rng=0, motif_only=True)
        assert set(targets.tolist()) <= set(ds.motif_nodes.tolist())

    def test_motif_only_without_motifs_raises(self):
        ds = load_dataset("cora", scale=0.05, seed=0)
        with pytest.raises(DatasetError):
            ds.sample_targets(5, motif_only=True)

    def test_graph_targets(self):
        ds = load_dataset("mutag", scale=0.12, seed=0)
        idx = ds.sample_targets(5, rng=0)
        assert ((0 <= idx) & (idx < len(ds))).all()

    def test_graph_motif_only(self):
        ds = load_dataset("mutag", scale=0.12, seed=0)
        idx = ds.sample_targets(5, rng=0, motif_only=True)
        assert all(ds[int(i)].motif_edges for i in idx)

    def test_sample_capped_at_pool(self):
        ds = load_dataset("mutag", scale=0.12, seed=0)
        assert ds.sample_targets(10_000, rng=0).size == len(ds)

    def test_sampling_deterministic(self):
        ds = load_dataset("tree_cycles", scale=0.12, seed=0)
        a = ds.sample_targets(5, rng=7)
        b = ds.sample_targets(5, rng=7)
        assert np.array_equal(a, b)


class TestBaseClasses:
    def test_node_dataset_num_classes_requires_labels(self):
        from repro.graph import Graph

        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 2)))
        ds = NodeDataset(name="x", graph=g)
        with pytest.raises(DatasetError):
            ds.num_classes

    def test_graph_dataset_empty_rejected(self):
        with pytest.raises(DatasetError):
            GraphDataset(name="x", graphs=[])

    def test_graph_dataset_indexing(self):
        ds = load_dataset("mutag", scale=0.12, seed=0)
        assert ds[0] is ds.graphs[0]
        assert len(ds) == len(ds.graphs)

    def test_stats_rows_formatted(self):
        ds = load_dataset("mutag", scale=0.12, seed=0)
        row = ds.stats().row()
        assert "mutag" in row
