"""Citation and molecule surrogates: statistics and learnability regime."""

import numpy as np
import pytest

from repro.datasets import bbbp, citation_surrogate, citeseer, cora, mutag, pubmed


class TestCitationSurrogates:
    @pytest.fixture(scope="class")
    def small_cora(self):
        return cora(scale=0.1, seed=0)

    def test_class_count_preserved(self, small_cora):
        assert small_cora.num_classes == 7

    def test_citeseer_pubmed_classes(self):
        assert citeseer(scale=0.08, seed=0).num_classes == 6
        assert pubmed(scale=0.02, seed=0).num_classes == 3

    def test_homophily(self, small_cora):
        g = small_cora.graph
        same = (g.y[g.src] == g.y[g.dst]).mean()
        assert same > 0.6

    def test_features_binary_sparse(self, small_cora):
        x = small_cora.graph.x
        assert set(np.unique(x)) <= {0.0, 1.0}
        assert x.mean() < 0.3  # sparse bag of words

    def test_features_class_correlated(self, small_cora):
        g = small_cora.graph
        # mean feature vector of a class should be most similar to itself
        means = np.stack([g.x[g.y == c].mean(axis=0) for c in range(7)])
        sims = means @ means.T
        assert (sims.argmax(axis=1) == np.arange(7)).mean() > 0.7

    def test_planetoid_style_split(self, small_cora):
        g = small_cora.graph
        assert g.train_mask.sum() <= 7 * 20
        assert not (g.train_mask & g.val_mask).any()
        assert not (g.val_mask & g.test_mask).any()

    def test_edges_symmetric(self, small_cora):
        g = small_cora.graph
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_custom_profile(self):
        ds = citation_surrogate("custom", 100, 400, 32, 4, seed=1)
        assert ds.graph.num_nodes == 100
        assert ds.num_classes == 4
        assert ds.graph.num_features == 32

    def test_gcn_learns_surrogate(self, small_cora):
        from repro.nn import Trainer, build_model

        model = build_model("gcn", "node", small_cora.num_features,
                            small_cora.num_classes, hidden=16, rng=0)
        result = Trainer(model, epochs=60, patience=None).fit_node(small_cora.graph)
        assert result.test_acc > 0.6  # far above the 1/7 chance level


class TestMoleculeSurrogates:
    @pytest.fixture(scope="class")
    def small_mutag(self):
        return mutag(scale=0.2, seed=0)

    def test_feature_dims(self, small_mutag):
        assert small_mutag.num_features == 7
        assert bbbp(scale=0.02, seed=0).num_features == 9

    def test_one_hot_features(self, small_mutag):
        for g in small_mutag.graphs[:5]:
            assert np.allclose(g.x.sum(axis=1), 1.0)

    def test_motif_only_in_positive_class(self, small_mutag):
        for g in small_mutag.graphs:
            if int(g.y) == 1:
                assert g.motif_edges
            else:
                assert g.motif_edges is None

    def test_nitro_motif_structure(self, small_mutag):
        # positive molecules contain an N (type 1) bonded to two O (type 2)
        g = next(g for g in small_mutag.graphs if int(g.y) == 1)
        types = g.x.argmax(axis=1)
        n_atoms = np.flatnonzero(types == 1)
        found = False
        for n in n_atoms:
            neighbors = g.dst[g.src == n]
            if (types[neighbors] == 2).sum() >= 2:
                found = True
        assert found

    def test_graphs_connected(self, small_mutag):
        from repro.graph import connected_components

        for g in small_mutag.graphs[:8]:
            assert len(set(connected_components(g))) == 1

    def test_gin_learns_surrogate(self, small_mutag):
        from repro.nn import Trainer, build_model

        model = build_model("gin", "graph", 7, 2, hidden=16, rng=0)
        result = Trainer(model, epochs=60, patience=None).fit_graphs(
            small_mutag.graphs, batch_size=64, rng=0)
        assert result.train_acc > 0.8

    def test_deterministic(self):
        a = mutag(scale=0.1, seed=5)
        b = mutag(scale=0.1, seed=5)
        assert np.array_equal(a.graphs[3].edge_index, b.graphs[3].edge_index)
