"""The paper's synthetic benchmarks: structure and ground truth."""

import numpy as np
import pytest

from repro.datasets import ba_2motifs, ba_shapes, tree_cycles


class TestBAShapes:
    @pytest.fixture(scope="class")
    def ds(self):
        return ba_shapes(scale=0.15, seed=0)

    def test_four_classes(self, ds):
        assert ds.num_classes == 4
        assert set(np.unique(ds.graph.y)) == {0, 1, 2, 3}

    def test_feature_dim_ten(self, ds):
        assert ds.num_features == 10

    def test_house_label_pattern(self, ds):
        # every house contributes 1 roof, 2 shoulders, 2 bases
        counts = np.bincount(ds.graph.y[ds.motif_nodes])
        assert counts[2] == 2 * counts[1]
        assert counts[3] == 2 * counts[1]

    def test_motif_edges_within_motif_nodes(self, ds):
        motif_nodes = set(ds.motif_nodes.tolist())
        for u, v in ds.graph.motif_edges:
            assert u in motif_nodes and v in motif_nodes

    def test_motif_edges_symmetric(self, ds):
        for u, v in ds.graph.motif_edges:
            assert (v, u) in ds.graph.motif_edges

    def test_houses_attached_to_base(self, ds):
        # every house has at least one edge leaving the motif node set
        motif_nodes = set(ds.motif_nodes.tolist())
        src, dst = ds.graph.src, ds.graph.dst
        attached = set()
        for u, v in zip(src.tolist(), dst.tolist()):
            if u in motif_nodes and v not in motif_nodes:
                attached.add(u)
        assert attached  # at least some anchor connections

    def test_split_masks_partition(self, ds):
        total = ds.graph.train_mask | ds.graph.val_mask | ds.graph.test_mask
        assert total.all()
        assert not (ds.graph.train_mask & ds.graph.val_mask).any()

    def test_full_scale_sizes(self):
        ds = ba_shapes(scale=1.0, seed=0)
        assert ds.graph.num_nodes == 700  # 300 base + 80 houses (Table III)

    def test_deterministic(self):
        a = ba_shapes(scale=0.15, seed=3)
        b = ba_shapes(scale=0.15, seed=3)
        assert np.array_equal(a.graph.edge_index, b.graph.edge_index)

    def test_different_seed_differs(self):
        a = ba_shapes(scale=0.15, seed=3)
        b = ba_shapes(scale=0.15, seed=4)
        assert not np.array_equal(a.graph.edge_index, b.graph.edge_index)


class TestTreeCycles:
    @pytest.fixture(scope="class")
    def ds(self):
        return tree_cycles(scale=0.15, seed=0)

    def test_binary_labels(self, ds):
        assert ds.num_classes == 2

    def test_cycle_nodes_labelled_one(self, ds):
        assert (ds.graph.y[ds.motif_nodes] == 1).all()

    def test_cycles_have_six_nodes(self, ds):
        assert len(ds.motif_nodes) % 6 == 0

    def test_motif_edges_form_cycles(self, ds):
        # within one cycle, every node has exactly 2 motif neighbours
        first_cycle = ds.motif_nodes[:6]
        motif = ds.graph.motif_edges
        for v in first_cycle:
            out = sum(1 for u, w in motif if u == v)
            assert out == 2

    def test_full_scale_sizes(self):
        ds = tree_cycles(scale=1.0, seed=0)
        assert ds.graph.num_nodes == 871  # 511 tree + 60 cycles (Table III)


class TestBA2Motifs:
    @pytest.fixture(scope="class")
    def ds(self):
        return ba_2motifs(scale=0.03, seed=0)

    def test_balanced_classes(self, ds):
        labels = [int(g.y) for g in ds.graphs]
        assert abs(labels.count(0) - labels.count(1)) <= 1

    def test_25_nodes_each(self, ds):
        assert all(g.num_nodes == 25 for g in ds.graphs)

    def test_motif_ground_truth_differs_by_class(self, ds):
        # house has 6 undirected motif edges, cycle has 5
        for g in ds.graphs:
            expected = 12 if int(g.y) == 0 else 10
            assert len(g.motif_edges) == expected

    def test_motif_on_last_five_nodes(self, ds):
        for g in ds.graphs[:6]:
            for u, v in g.motif_edges:
                assert u >= 20 and v >= 20

    def test_connected_to_base(self, ds):
        from repro.graph import connected_components

        for g in ds.graphs[:6]:
            assert len(set(connected_components(g))) == 1

    def test_stats_row(self, ds):
        stats = ds.stats()
        assert stats.num_nodes == 25.0
        assert stats.num_features == 10
