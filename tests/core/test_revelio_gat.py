"""Model-agnosticism: Revelio on GAT targets (where GNN-LRP cannot run).

The paper emphasizes Revelio applies "to any GNNs with the fundamental
message passing architecture" while GNN-LRP is restricted (§V-A). These
tests pin that compatibility surface.
"""

import numpy as np
import pytest

from repro.core import Revelio, TopKRevelio
from repro.datasets import citation_surrogate, mutag
from repro.errors import ExplainerError
from repro.explain import GNNLRP, FlowX, GNNExplainer
from repro.nn import Trainer, build_model


@pytest.fixture(scope="module")
def gat_setup():
    ds = citation_surrogate("mini_cite", 60, 240, 16, 3, seed=0)
    model = build_model("gat", "node", 16, 3, hidden=16, rng=0)
    Trainer(model, epochs=60, patience=None).fit_node(ds.graph)
    model.eval()
    return ds, model


class TestRevelioOnGAT:
    def test_explains_gat_node_model(self, gat_setup):
        ds, model = gat_setup
        e = Revelio(model, epochs=15, seed=0).explain(ds.graph, target=5)
        assert np.isfinite(e.edge_scores).all()
        assert e.flow_scores is not None

    def test_topk_on_gat(self, gat_setup):
        ds, model = gat_setup
        e = TopKRevelio(model, k=8, epochs=10, seed=0).explain(ds.graph, target=5)
        assert e.meta["params"]["k"] == 8

    def test_counterfactual_on_gat(self, gat_setup):
        ds, model = gat_setup
        e = Revelio(model, epochs=10, seed=0).explain(ds.graph, target=5,
                                                      mode="counterfactual")
        assert e.mode == "counterfactual"

    def test_flowx_on_gat(self, gat_setup):
        ds, model = gat_setup
        e = FlowX(model, samples=1, finetune_epochs=5, seed=0).explain(
            ds.graph, target=5)
        assert np.isfinite(e.edge_scores).all()

    def test_gnnexplainer_on_gat(self, gat_setup):
        ds, model = gat_setup
        e = GNNExplainer(model, epochs=10).explain(ds.graph, target=5)
        assert np.isfinite(e.edge_scores).all()

    def test_gnn_lrp_rejects_gat(self, gat_setup):
        _, model = gat_setup
        with pytest.raises(ExplainerError):
            GNNLRP(model)


class TestRevelioOnGATGraphTask:
    def test_graph_classification_gat(self):
        ds = mutag(scale=0.12, seed=0)
        model = build_model("gat", "graph", ds.num_features, ds.num_classes,
                            hidden=16, rng=0)
        Trainer(model, epochs=30, patience=None).fit_graphs(ds.graphs,
                                                            batch_size=64, rng=0)
        model.eval()
        e = Revelio(model, epochs=10, seed=0).explain(ds.graphs[0])
        assert e.edge_scores.shape == (ds.graphs[0].num_edges,)
