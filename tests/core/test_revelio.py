"""Revelio semantics: the mask transformation, objectives and outputs."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import Revelio
from repro.errors import ExplainerError
from repro.eval import Instance, fidelity_minus
from repro.flows import enumerate_flows


@pytest.fixture
def revelio(node_model):
    return Revelio(node_model, epochs=60, lr=0.05, alpha=0.05, seed=0)


class TestConstruction:
    def test_bad_mask_activation(self, node_model):
        with pytest.raises(ExplainerError):
            Revelio(node_model, mask_activation="relu")

    def test_bad_layer_weight_activation(self, node_model):
        with pytest.raises(ExplainerError):
            Revelio(node_model, layer_weight_activation="square")

    def test_model_frozen_on_construction(self, node_model):
        Revelio(node_model)
        assert all(not p.requires_grad for p in node_model.parameters())


class TestMaskTransformation:
    """Unit checks on Eq. 4/5 independent of the learning loop."""

    def test_flow_scores_bounded_tanh(self, revelio):
        masks = Tensor(np.array([-10.0, 0.0, 10.0]))
        out = revelio._flow_scores(masks).numpy()
        assert out[0] == pytest.approx(-1.0, abs=1e-4)
        assert out[1] == 0.0
        assert out[2] == pytest.approx(1.0, abs=1e-4)

    def test_sigmoid_variant_positive(self, node_model):
        rev = Revelio(node_model, mask_activation="sigmoid")
        out = rev._flow_scores(Tensor(np.array([-3.0, 3.0]))).numpy()
        assert (out > 0).all()

    def test_layer_scale_exp_positive(self, revelio):
        out = revelio._layer_scale(Tensor(np.array([-2.0, 0.0, 2.0]))).numpy()
        assert (out > 0).all()
        assert out[1] == pytest.approx(1.0)

    def test_layer_scale_softplus(self, node_model):
        rev = Revelio(node_model, layer_weight_activation="softplus")
        out = rev._layer_scale(Tensor(np.array([-5.0, 5.0]))).numpy()
        assert (out > 0).all()

    def test_layer_scale_identity_can_be_negative(self, node_model):
        rev = Revelio(node_model, layer_weight_activation="identity")
        out = rev._layer_scale(Tensor(np.array([-1.0]))).numpy()
        assert out[0] == -1.0

    def test_layer_edge_scores_in_unit_interval(self, revelio, mini_ba_shapes):
        graph = mini_ba_shapes.graph
        ctx = revelio.node_context(graph, int(mini_ba_shapes.motif_nodes[0]))
        fi = enumerate_flows(ctx.subgraph, 3, target=ctx.local_target)
        masks = Tensor(np.random.default_rng(0).normal(size=fi.num_flows))
        w = Tensor(np.zeros(3))
        omega = revelio._layer_edge_scores(masks, w, fi).numpy()
        assert omega.shape == (3, fi.num_layer_edges)
        assert ((omega > 0) & (omega < 1)).all()

    def test_zero_masks_give_half_scores(self, revelio, mini_ba_shapes):
        # tanh(0)=0 accumulates to 0; sigmoid(0)=0.5 for every layer edge.
        graph = mini_ba_shapes.graph
        ctx = revelio.node_context(graph, int(mini_ba_shapes.motif_nodes[0]))
        fi = enumerate_flows(ctx.subgraph, 3, target=ctx.local_target)
        omega = revelio._layer_edge_scores(
            Tensor(np.zeros(fi.num_flows)), Tensor(np.zeros(3)), fi
        ).numpy()
        assert np.allclose(omega, 0.5)

    def test_single_flow_mask_moves_its_edges_only(self, revelio, mini_ba_shapes):
        graph = mini_ba_shapes.graph
        ctx = revelio.node_context(graph, int(mini_ba_shapes.motif_nodes[0]))
        fi = enumerate_flows(ctx.subgraph, 3, target=ctx.local_target)
        base = revelio._layer_edge_scores(
            Tensor(np.zeros(fi.num_flows)), Tensor(np.zeros(3)), fi).numpy()
        bumped_masks = np.zeros(fi.num_flows)
        bumped_masks[0] = 2.0
        bumped = revelio._layer_edge_scores(
            Tensor(bumped_masks), Tensor(np.zeros(3)), fi).numpy()
        changed = ~np.isclose(base, bumped)
        for l in range(3):
            expected = np.zeros(fi.num_layer_edges, dtype=bool)
            expected[fi.layer_edges[0, l]] = True
            assert np.array_equal(changed[l], expected)


class TestNodeExplanation:
    def test_output_structure(self, revelio, mini_ba_shapes, good_motif_node):
        graph = mini_ba_shapes.graph
        e = revelio.explain(graph, target=good_motif_node)
        assert e.method == "revelio"
        assert e.edge_scores.shape == (graph.num_edges,)
        assert e.flow_scores is not None
        assert e.flow_index is not None
        assert e.target == good_motif_node
        assert e.context_edge_positions is not None

    def test_flow_scores_in_tanh_range(self, revelio, mini_ba_shapes, good_motif_node):
        e = revelio.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert (np.abs(e.flow_scores) <= 1.0).all()

    def test_scores_zero_outside_context(self, revelio, mini_ba_shapes, good_motif_node):
        graph = mini_ba_shapes.graph
        e = revelio.explain(graph, target=good_motif_node)
        outside = np.setdiff1d(np.arange(graph.num_edges), e.context_edge_positions)
        assert np.allclose(e.edge_scores[outside], 0.0)

    def test_top_flows_end_at_target(self, revelio, mini_ba_shapes, good_motif_node):
        e = revelio.explain(mini_ba_shapes.graph, target=good_motif_node)
        for seq, _ in e.top_flows(5):
            assert seq[-1] == good_motif_node

    def test_factual_objective_decreases(self, revelio, mini_ba_shapes, good_motif_node):
        e = revelio.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert np.isfinite(e.meta["final_loss"])

    def test_deterministic_given_seed(self, node_model, mini_ba_shapes, good_motif_node):
        e1 = Revelio(node_model, epochs=20, seed=3).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        e2 = Revelio(node_model, epochs=20, seed=3).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_requires_target_for_node_model(self, revelio, mini_ba_shapes):
        with pytest.raises(ExplainerError):
            revelio.explain(mini_ba_shapes.graph)

    def test_bad_mode(self, revelio, mini_ba_shapes, good_motif_node):
        with pytest.raises(ExplainerError):
            revelio.explain(mini_ba_shapes.graph, target=good_motif_node, mode="why")


class TestCounterfactual:
    def test_scores_negated(self, node_model, mini_ba_shapes, good_motif_node):
        rev = Revelio(node_model, epochs=40, seed=0)
        e = rev.explain(mini_ba_shapes.graph, target=good_motif_node,
                        mode="counterfactual")
        assert e.mode == "counterfactual"
        assert (np.abs(e.flow_scores) <= 1.0).all()

    def test_cf_learning_lowers_masked_probability(self, node_model, mini_ba_shapes,
                                                   good_motif_node):
        """Eq. (2) must drive the masked prediction away from the class.

        Compares P(c) under the learned counterfactual mask against P(c)
        under the all-0.5 initialization mask (tanh(0)=0 → σ(0)=0.5).
        """
        from repro.explain.flow_common import masked_probability

        graph = mini_ba_shapes.graph
        rev = Revelio(node_model, epochs=80, lr=0.05, alpha=0.0, seed=0)
        ctx = rev.node_context(graph, good_motif_node)
        e = rev.explain(graph, target=good_motif_node, mode="counterfactual")
        # layer_edge_scores were inverted (1 - ω); undo to get the learned mask.
        learned = 1.0 - e.layer_edge_scores
        init = np.full_like(learned, 0.5)
        c = e.predicted_class
        p_learned = masked_probability(node_model, ctx.subgraph, learned, c,
                                       ctx.local_target)
        p_init = masked_probability(node_model, ctx.subgraph, init, c,
                                    ctx.local_target)
        assert p_learned < p_init


class TestGraphExplanation:
    def test_graph_task(self, graph_model, mini_mutag):
        rev = Revelio(graph_model, epochs=40, seed=0)
        g = next(g for g in mini_mutag.graphs if int(g.y) == 1)
        e = rev.explain(g)
        assert e.edge_scores.shape == (g.num_edges,)
        assert e.context_edge_positions is None
        assert e.flow_index.target is None

    def test_factual_keeps_prediction_on_motif_instance(self, graph_model, mini_mutag):
        # Explain a correctly-predicted class-1 molecule (its nitro motif is
        # a concrete structure the explanation can latch onto).
        rev = Revelio(graph_model, epochs=80, lr=0.05, alpha=0.01, seed=0)
        g = next(g for g in mini_mutag.graphs
                 if int(g.y) == 1 and graph_model.predict(g)[0] == 1)
        e = rev.explain(g)
        inst = [Instance(g, None)]
        fm = fidelity_minus(graph_model, inst, [e], 0.5)
        assert fm < 0.5  # keeping explanatory half retains most probability

    def test_factual_learning_raises_masked_probability(self, graph_model, mini_mutag):
        """Eq. (1) must raise P(c) relative to the all-0.5 init mask."""
        from repro.explain.flow_common import masked_probability

        rev = Revelio(graph_model, epochs=80, lr=0.05, alpha=0.0, seed=0)
        g = next(g for g in mini_mutag.graphs
                 if int(g.y) == 1 and graph_model.predict(g)[0] == 1)
        e = rev.explain(g)
        c = e.predicted_class
        p_learned = masked_probability(graph_model, g, e.layer_edge_scores, c, None)
        p_init = masked_probability(graph_model, g,
                                    np.full_like(e.layer_edge_scores, 0.5), c, None)
        assert p_learned > p_init


class TestEdgeTransfer:
    def test_edges_from_layers_averages_used_only(self):
        from repro.core.revelio import Revelio as R
        from repro.flows import FlowIndex

        fi = FlowIndex(nodes=np.array([[0, 1, 2]]), layer_edges=np.array([[0, 1]]),
                       num_layers=2, num_edges=3, num_nodes=3)
        omega = np.array([[0.9, 0.1, 0.5, 0, 0, 0], [0.2, 0.8, 0.5, 0, 0, 0]])
        used = fi.used_layer_edges()
        scores = R._edges_from_layers(omega, used, fi)
        # edge 0 used only at layer 1 → 0.9; edge 1 only layer 2 → 0.8
        assert scores[0] == pytest.approx(0.9)
        assert scores[1] == pytest.approx(0.8)
        assert scores[2] == 0.0  # unused everywhere


class TestAblations:
    @pytest.mark.parametrize("activation", ["exp", "softplus", "identity"])
    def test_layer_weight_variants_run(self, node_model, mini_ba_shapes,
                                       good_motif_node, activation):
        rev = Revelio(node_model, epochs=15, layer_weight_activation=activation, seed=0)
        e = rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert np.isfinite(e.edge_scores).all()

    @pytest.mark.parametrize("activation", ["tanh", "sigmoid"])
    def test_mask_activation_variants_run(self, node_model, mini_ba_shapes,
                                          good_motif_node, activation):
        rev = Revelio(node_model, epochs=15, mask_activation=activation, seed=0)
        e = rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert np.isfinite(e.edge_scores).all()


class TestExplanationMemo:
    """The whole-result memo behind the warm-cache speedup."""

    def test_repeat_explain_is_a_cache_hit(self, node_model, mini_ba_shapes,
                                           good_motif_node):
        from repro.core.revelio import clear_explanation_cache
        from repro.obs import PERF

        rev = Revelio(node_model, epochs=15, seed=0)
        clear_explanation_cache()
        first = rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        hits_before = PERF.explanation_cache_hits
        second = rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert PERF.explanation_cache_hits == hits_before + 1
        np.testing.assert_array_equal(first.edge_scores, second.edge_scores)
        np.testing.assert_array_equal(first.flow_scores, second.flow_scores)
        # Memo hits hand out copies: mutating one result must not leak
        # into the cache or other callers.
        assert second.edge_scores is not first.edge_scores
        second.edge_scores[:] = -1.0
        third = rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        np.testing.assert_array_equal(third.edge_scores, first.edge_scores)

    def test_disabled_context_bypasses_memo(self, node_model, mini_ba_shapes,
                                            good_motif_node):
        from repro.core.revelio import (clear_explanation_cache,
                                        explanation_cache_disabled)
        from repro.obs import PERF

        rev = Revelio(node_model, epochs=15, seed=0)
        clear_explanation_cache()
        rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        hits_before = PERF.explanation_cache_hits
        with explanation_cache_disabled():
            rev.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert PERF.explanation_cache_hits == hits_before

    def test_hyperparameters_separate_entries(self, node_model, mini_ba_shapes,
                                              good_motif_node):
        from repro.core.revelio import clear_explanation_cache
        from repro.obs import PERF

        clear_explanation_cache()
        Revelio(node_model, epochs=15, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        hits_before = PERF.explanation_cache_hits
        Revelio(node_model, epochs=16, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert PERF.explanation_cache_hits == hits_before

    def test_subclasses_do_not_collide(self, node_model, mini_ba_shapes,
                                       good_motif_node):
        """Regression: TopKRevelio must never be served a Revelio result."""
        from repro.core import TopKRevelio
        from repro.core.revelio import clear_explanation_cache

        clear_explanation_cache()
        Revelio(node_model, epochs=15, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        topk = TopKRevelio(node_model, k=4, epochs=15, seed=0)
        e = topk.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.method == "revelio_topk"
        assert "selected_flows" in e.meta
        # Two differently-configured TopK instances stay separate too.
        e8 = TopKRevelio(node_model, k=8, epochs=15, seed=0).explain(
            mini_ba_shapes.graph, target=good_motif_node)
        assert e8.meta["params"]["k"] == 8
