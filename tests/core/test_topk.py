"""Top-k Revelio (the paper's future-work extension) and flow preselection."""

import numpy as np
import pytest

from repro.core import (
    PRESELECT_STRATEGIES,
    Revelio,
    TopKRevelio,
    gradient_flow_scores,
    preselect_flows,
    walk_weight_flow_scores,
)
from repro.errors import ExplainerError
from repro.flows import enumerate_flows


class TestPreselection:
    @pytest.fixture
    def setup(self, node_model, mini_ba_shapes, good_motif_node):
        rev = Revelio(node_model)
        ctx = rev.node_context(mini_ba_shapes.graph, good_motif_node)
        fi = enumerate_flows(ctx.subgraph, node_model.num_layers,
                             target=ctx.local_target)
        c = rev.predicted_class(ctx.subgraph, target=ctx.local_target)
        return node_model, ctx, fi, c

    def test_gradient_scores_shape(self, setup):
        model, ctx, fi, c = setup
        scores = gradient_flow_scores(model, ctx.subgraph, fi, c, ctx.local_target)
        assert scores.shape == (fi.num_flows,)
        assert (scores >= 0).all()
        assert scores.max() > 0

    def test_walk_weight_scores(self, setup):
        _, ctx, fi, _ = setup
        scores = walk_weight_flow_scores(ctx.subgraph, fi)
        assert (scores > 0).all()
        assert scores.shape == (fi.num_flows,)

    @pytest.mark.parametrize("strategy", PRESELECT_STRATEGIES)
    def test_selection_size(self, setup, strategy):
        model, ctx, fi, c = setup
        k = min(5, fi.num_flows - 1)
        chosen = preselect_flows(model, ctx.subgraph, fi, k, c, ctx.local_target,
                                 strategy=strategy)
        assert chosen.shape == (k,)
        assert len(set(chosen.tolist())) == k

    def test_k_larger_than_flows_keeps_all(self, setup):
        model, ctx, fi, c = setup
        chosen = preselect_flows(model, ctx.subgraph, fi, 10**6, c, ctx.local_target)
        assert chosen.size == fi.num_flows

    def test_bad_strategy(self, setup):
        model, ctx, fi, c = setup
        with pytest.raises(ExplainerError):
            preselect_flows(model, ctx.subgraph, fi, 3, c, ctx.local_target,
                            strategy="psychic")

    def test_bad_k(self, setup):
        model, ctx, fi, c = setup
        with pytest.raises(ExplainerError):
            preselect_flows(model, ctx.subgraph, fi, 0, c, ctx.local_target)

    def test_gradient_beats_random_on_motif(self, node_model, mini_ba_shapes,
                                            good_motif_node):
        # gradient preselection should favour flows through the motif more
        # often than uniform choice does
        rev = Revelio(node_model)
        graph = mini_ba_shapes.graph
        ctx = rev.node_context(graph, good_motif_node)
        fi = enumerate_flows(ctx.subgraph, node_model.num_layers,
                             target=ctx.local_target)
        c = rev.predicted_class(ctx.subgraph, target=ctx.local_target)
        k = max(3, fi.num_flows // 4)
        grad_sel = preselect_flows(node_model, ctx.subgraph, fi, k, c,
                                   ctx.local_target, strategy="gradient")
        assert grad_sel.size == k


class TestTopKRevelio:
    def test_explains_with_small_k(self, node_model, mini_ba_shapes, good_motif_node):
        topk = TopKRevelio(node_model, k=8, epochs=30, seed=0)
        e = topk.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.method == "revelio_topk"
        assert e.meta["params"]["k"] == 8
        assert e.meta["selected_flows"].shape == (8,)
        assert e.flow_scores.shape[0] == e.meta["num_flows"]

    def test_background_flows_share_one_score(self, node_model, mini_ba_shapes,
                                              good_motif_node):
        topk = TopKRevelio(node_model, k=4, epochs=20, seed=0)
        e = topk.explain(mini_ba_shapes.graph, target=good_motif_node)
        selected = set(e.meta["selected_flows"].tolist())
        background = [f for f in range(e.meta["num_flows"]) if f not in selected]
        if len(background) > 1:
            values = e.flow_scores[background]
            assert np.allclose(values, values[0])

    def test_k_exceeding_flows_equivalent_to_full(self, node_model, mini_ba_shapes,
                                                  good_motif_node):
        topk = TopKRevelio(node_model, k=10**6, epochs=15, seed=0)
        e = topk.explain(mini_ba_shapes.graph, target=good_motif_node)
        assert e.meta["params"]["k"] == e.meta["num_flows"]

    def test_counterfactual_mode(self, node_model, mini_ba_shapes, good_motif_node):
        topk = TopKRevelio(node_model, k=8, epochs=15, seed=0)
        e = topk.explain(mini_ba_shapes.graph, target=good_motif_node,
                         mode="counterfactual")
        assert e.mode == "counterfactual"
        assert np.isfinite(e.edge_scores).all()

    def test_graph_task(self, graph_model, mini_mutag):
        topk = TopKRevelio(graph_model, k=16, epochs=15, seed=0)
        e = topk.explain(mini_mutag.graphs[0])
        assert np.isfinite(e.edge_scores).all()

    def test_invalid_k(self, node_model):
        with pytest.raises(ExplainerError):
            TopKRevelio(node_model, k=0)

    def test_invalid_strategy(self, node_model):
        with pytest.raises(ExplainerError):
            TopKRevelio(node_model, strategy="bogus")

    def test_deterministic(self, node_model, mini_ba_shapes, good_motif_node):
        g = mini_ba_shapes.graph
        e1 = TopKRevelio(node_model, k=8, epochs=10, seed=2).explain(
            g, target=good_motif_node)
        e2 = TopKRevelio(node_model, k=8, epochs=10, seed=2).explain(
            g, target=good_motif_node)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_quality_comparable_to_full(self, node_model, mini_ba_shapes,
                                        good_motif_node):
        """With k = half the flows, top-k should still find motif structure."""
        from repro.eval import explanation_auc

        graph = mini_ba_shapes.graph
        full = Revelio(node_model, epochs=60, lr=0.05, seed=0).explain(
            graph, target=good_motif_node)
        k = max(4, full.meta["num_flows"] // 2)
        pruned = TopKRevelio(node_model, k=k, epochs=60, lr=0.05, seed=0).explain(
            graph, target=good_motif_node)
        auc_full = explanation_auc(graph, full)
        auc_pruned = explanation_auc(graph, pruned)
        assert auc_pruned > 0.5  # well above chance
        assert auc_pruned >= auc_full - 0.25  # close to the full variant
