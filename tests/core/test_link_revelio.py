"""LinkRevelio: flow explanations for link predictions."""

import numpy as np
import pytest

from repro.core import LinkRevelio
from repro.errors import ExplainerError
from repro.graph import Graph, sbm_edges
from repro.nn import LinkPredictor, train_link_predictor


@pytest.fixture(scope="module")
def link_setup():
    rng = np.random.default_rng(0)
    edges = sbm_edges([15, 15], 0.4, 0.02, rng=rng)
    y = np.array([0] * 15 + [1] * 15)
    x = rng.normal(size=(30, 6)) + y[:, None]
    graph = Graph(edge_index=edges, x=x, y=y)
    model = LinkPredictor("gcn", 6, 16, rng=0)
    train_link_predictor(model, graph, epochs=60, rng=0)
    # a high-probability same-block link
    pairs = graph.edge_index.T
    probs = model.predict_proba(graph, pairs)
    best = pairs[int(np.argmax(probs))]
    return graph, model, int(best[0]), int(best[1])


class TestLinkRevelio:
    def test_explains_link(self, link_setup):
        graph, model, u, v = link_setup
        explainer = LinkRevelio(model, epochs=30, seed=0)
        e = explainer.explain(graph, u, v)
        assert e.method == "link_revelio"
        assert e.edge_scores.shape == (graph.num_edges,)
        assert e.meta["link"] == (u, v)
        assert 0.0 <= e.meta["p_link"] <= 1.0

    def test_flows_end_at_an_endpoint(self, link_setup):
        graph, model, u, v = link_setup
        e = LinkRevelio(model, epochs=15, seed=0).explain(graph, u, v)
        ends = e.context_node_ids[e.flow_index.nodes[:, -1]]
        assert set(ends.tolist()) <= {u, v}
        assert u in ends and v in ends  # both endpoints covered

    def test_counterfactual_mode(self, link_setup):
        graph, model, u, v = link_setup
        e = LinkRevelio(model, epochs=15, seed=0).explain(graph, u, v,
                                                          mode="counterfactual")
        assert e.mode == "counterfactual"
        assert np.isfinite(e.edge_scores).all()

    def test_factual_learning_raises_link_probability(self, link_setup):
        """The masked link probability under the learned masks must beat
        the all-0.5 initialization mask (Eq. 1 semantics for links)."""
        from repro.autograd import Tensor, no_grad

        graph, model, u, v = link_setup
        explainer = LinkRevelio(model, epochs=60, lr=0.05, alpha=0.0, seed=0)
        subgraph, node_ids, _, lu, lv = explainer.link_context(graph, u, v)
        e = explainer.explain(graph, u, v)

        def masked_p(mask_rows):
            with no_grad():
                masks = [Tensor(mask_rows[l]) for l in range(model.num_layers)]
                logit = model.link_logits(subgraph, np.array([[lu, lv]]),
                                          edge_masks=masks)
                return float(logit.sigmoid().numpy()[0])

        p_learned = masked_p(e.layer_edge_scores)
        p_init = masked_p(np.full_like(e.layer_edge_scores, 0.5))
        assert p_learned > p_init

    def test_bad_mode(self, link_setup):
        graph, model, u, v = link_setup
        with pytest.raises(ExplainerError):
            LinkRevelio(model, epochs=5).explain(graph, u, v, mode="why")

    def test_bad_node(self, link_setup):
        graph, model, u, _ = link_setup
        with pytest.raises(ExplainerError):
            LinkRevelio(model, epochs=5).explain(graph, u, 10**6)

    def test_deterministic(self, link_setup):
        graph, model, u, v = link_setup
        e1 = LinkRevelio(model, epochs=10, seed=4).explain(graph, u, v)
        e2 = LinkRevelio(model, epochs=10, seed=4).explain(graph, u, v)
        assert np.allclose(e1.edge_scores, e2.edge_scores)

    def test_scores_zero_outside_context(self, link_setup):
        graph, model, u, v = link_setup
        e = LinkRevelio(model, epochs=10, seed=0).explain(graph, u, v)
        outside = np.setdiff1d(np.arange(graph.num_edges), e.context_edge_positions)
        assert np.allclose(e.edge_scores[outside], 0.0)

    def test_top_flows_translated(self, link_setup):
        graph, model, u, v = link_setup
        e = LinkRevelio(model, epochs=10, seed=0).explain(graph, u, v)
        for seq, _ in e.top_flows(5):
            assert seq[-1] in (u, v)
