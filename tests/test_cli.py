"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def small_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.12")
    monkeypatch.setenv("REPRO_INSTANCES", "2")
    monkeypatch.setenv("REPRO_EFFORT", "0.03")
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.explainer == "revelio"
        assert args.mode == "factual"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "-d", "imagenet"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cora", "mutag", "ba_shapes"):
            assert name in out

    def test_train_command(self, capsys):
        assert main(["train", "-d", "tree_cycles", "-m", "gcn", "--scale", "0.12"]) == 0
        assert "tree_cycles/gcn" in capsys.readouterr().out

    def test_explain_command(self, capsys):
        code = main(["explain", "-d", "tree_cycles", "-m", "gcn", "--scale", "0.12",
                     "-e", "revelio", "--epochs", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "explanatory edges" in out
        assert "Message Flow" in out  # flow table printed for flow methods

    def test_explain_edge_method_no_flow_table(self, capsys):
        code = main(["explain", "-d", "tree_cycles", "-m", "gcn", "--scale", "0.12",
                     "-e", "gradcam"])
        assert code == 0
        assert "Message Flow" not in capsys.readouterr().out

    def test_experiment_fidelity(self, capsys):
        code = main(["experiment", "fidelity", "-d", "tree_cycles", "-m", "gcn",
                     "--scale", "0.12", "--instances", "2", "--effort", "0.03"])
        assert code == 0
        out = capsys.readouterr().out
        assert "revelio" in out
        assert "s=0.5" in out
