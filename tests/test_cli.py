"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def small_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", "0.12")
    monkeypatch.setenv("REPRO_INSTANCES", "2")
    monkeypatch.setenv("REPRO_EFFORT", "0.03")
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.explainer == "revelio"
        assert args.mode == "factual"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "-d", "imagenet"])

    def test_experiment_runner_flags(self):
        args = build_parser().parse_args(
            ["experiment", "fidelity", "--jobs", "4",
             "--resume", "runs/fid.jsonl", "--timeout", "30", "--retries", "2"])
        assert args.jobs == 4
        assert args.resume == "runs/fid.jsonl"
        assert args.timeout == 30.0
        assert args.retries == 2

    def test_experiment_runner_flag_defaults(self):
        args = build_parser().parse_args(["experiment", "fidelity"])
        assert args.jobs is None and args.resume is None
        assert args.retries == 1


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cora", "mutag", "ba_shapes"):
            assert name in out

    def test_train_command(self, capsys):
        assert main(["train", "-d", "tree_cycles", "-m", "gcn", "--scale", "0.12"]) == 0
        assert "tree_cycles/gcn" in capsys.readouterr().out

    def test_explain_command(self, capsys):
        code = main(["explain", "-d", "tree_cycles", "-m", "gcn", "--scale", "0.12",
                     "-e", "revelio", "--epochs", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "explanatory edges" in out
        assert "Message Flow" in out  # flow table printed for flow methods

    def test_explain_edge_method_no_flow_table(self, capsys):
        code = main(["explain", "-d", "tree_cycles", "-m", "gcn", "--scale", "0.12",
                     "-e", "gradcam"])
        assert code == 0
        assert "Message Flow" not in capsys.readouterr().out

    def test_experiment_fidelity(self, capsys):
        code = main(["experiment", "fidelity", "-d", "tree_cycles", "-m", "gcn",
                     "--scale", "0.12", "--instances", "2", "--effort", "0.03"])
        assert code == 0
        out = capsys.readouterr().out
        assert "revelio" in out
        assert "s=0.5" in out

    def test_experiment_sharded_forwards_execution_config(self, capsys, monkeypatch,
                                                          tmp_path):
        seen = {}

        def fake_runner(dataset, model, methods, *, mode="factual", config=None,
                        execution=None, **kwargs):
            seen.update(execution=execution, dataset=dataset)
            return {"rows": ["header", "row"], "curves": {}, "failures": {}}

        monkeypatch.setattr("repro.cli.run_fidelity_experiment", fake_runner)
        journal = str(tmp_path / "fid.jsonl")
        code = main(["experiment", "fidelity", "-d", "tree_cycles", "-m", "gcn",
                     "--jobs", "4", "--resume", journal, "--timeout", "9"])
        assert code == 0
        execution = seen["execution"]
        assert execution.jobs == 4
        assert execution.resume == journal
        assert execution.timeout == 9.0
        assert execution.retries == 1
        assert not execution.trace

    def test_resume_alone_implies_inline_jobs(self, monkeypatch, tmp_path):
        seen = {}

        def fake_runner(dataset, model, methods, *, mode="factual", config=None,
                        execution=None, **kwargs):
            seen.update(execution=execution)
            return {"rows": [], "curves": {}, "failures": {}}

        monkeypatch.setattr("repro.cli.run_fidelity_experiment", fake_runner)
        journal = str(tmp_path / "fid.jsonl")
        assert main(["experiment", "fidelity", "-d", "tree_cycles", "-m", "gcn",
                     "--resume", journal]) == 0
        assert seen["execution"].jobs == 1
        assert seen["execution"].resume == journal

    def test_trace_flag_bare_and_with_path(self, monkeypatch):
        seen = {}

        def fake_runner(dataset, model, methods, *, mode="factual", config=None,
                        execution=None, **kwargs):
            seen.update(execution=execution)
            return {"rows": [], "curves": {}, "failures": {}}

        monkeypatch.setattr("repro.cli.run_fidelity_experiment", fake_runner)
        assert main(["experiment", "fidelity", "-d", "tree_cycles", "-m", "gcn",
                     "--trace"]) == 0
        assert seen["execution"].trace is True
        assert main(["experiment", "fidelity", "-d", "tree_cycles", "-m", "gcn",
                     "--trace", "runs/t.jsonl"]) == 0
        assert seen["execution"].trace == "runs/t.jsonl"

    def test_trace_summarize_command(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.jsonl"
        records = [
            {"name": "explain", "trace_id": "t", "span_id": "a", "parent_id": None,
             "pid": 1, "start": 0.0, "seconds": 0.5, "attrs": {"method": "revelio"}},
            {"name": "flow_enumerate", "trace_id": "t", "span_id": "b",
             "parent_id": "a", "pid": 2, "start": 0.1, "seconds": 0.2,
             "attrs": {"method": "revelio"}},
        ]
        trace.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "revelio" in out
        assert "flow_enumerate" in out
        assert "2 processes" in out

    def test_jobs_rejected_for_unsupported_artifact(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.run_alpha_sensitivity",
                            lambda *a, **k: {"rows": [], "curves": {}})
        assert main(["experiment", "alpha", "-d", "tree_cycles", "-m", "gcn",
                     "--jobs", "4"]) == 0
        assert "not supported" in capsys.readouterr().err

    def test_stats_command_prints_cache_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "flow_cache" in out
        assert "hit_rate" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8731
        assert args.max_batch == 16
        assert args.max_linger_ms == 5.0
        assert args.queue_limit == 64
        assert args.no_coalesce is False
        assert args.obs_dir is None
        assert args.trace_every == 0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--max-batch", "4",
             "--max-linger-ms", "2.5", "--queue-limit", "8",
             "--no-coalesce", "--obs-dir", "runs/serve",
             "--trace-every", "10"])
        assert args.port == 9000
        assert args.max_batch == 4
        assert args.max_linger_ms == 2.5
        assert args.queue_limit == 8
        assert args.no_coalesce is True
        assert args.obs_dir == "runs/serve"
        assert args.trace_every == 10
