"""Seeded-RNG helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro import ReproError
from repro.errors import (
    AutogradError,
    DatasetError,
    EvaluationError,
    ExplainerError,
    FlowError,
    GraphError,
    ModelError,
    ShapeError,
)
from repro.rng import DEFAULT_SEED, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        assert ensure_rng(5).integers(1000) == ensure_rng(5).integers(1000)

    def test_none_uses_default_seed(self):
        assert ensure_rng(None).integers(1000) == ensure_rng(DEFAULT_SEED).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 3

    def test_deterministic_fanout(self):
        a = [c.integers(10**9) for c in spawn_rngs(7, 4)]
        b = [c.integers(10**9) for c in spawn_rngs(7, 4)]
        assert a == b

    def test_consuming_one_child_does_not_affect_others(self):
        first = spawn_rngs(3, 2)
        first[0].integers(10**9, size=100)  # burn draws
        baseline = spawn_rngs(3, 2)
        assert first[1].integers(10**9) == baseline[1].integers(10**9)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        AutogradError, ShapeError, GraphError, DatasetError,
        ModelError, FlowError, ExplainerError, EvaluationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_shape_error_is_autograd_error(self):
        assert issubclass(ShapeError, AutogradError)

    def test_single_catch_all(self):
        """A caller can catch everything from the library in one clause."""
        from repro.flows import enumerate_flows
        from repro.graph import Graph

        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 1)))
        with pytest.raises(ReproError):
            enumerate_flows(g, 0)
