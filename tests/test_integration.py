"""End-to-end integration tests across subsystems.

Each test exercises a realistic multi-module pipeline: dataset → training
→ explanation → evaluation → presentation, on small but non-trivial
configurations.
"""

import numpy as np
import pytest

from repro import Revelio, enumerate_flows, load_dataset, make_explainer
from repro.analysis import agreement_matrix, flow_statistics, mass_through_nodes
from repro.eval import (
    Instance,
    explanation_auc,
    fidelity_minus,
    fidelity_plus,
)
from repro.graph import add_noise_edges, perturb_features
from repro.nn import Trainer, build_model
from repro.viz import explanation_to_dot, format_flow_comparison, render_explanation


class TestNodeClassificationPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        ds = load_dataset("tree_cycles", scale=0.15, seed=1)
        model = build_model("gcn", "node", ds.num_features, ds.num_classes,
                            hidden=16, rng=1)
        Trainer(model, lr=0.02, weight_decay=0.0, epochs=200,
                patience=None).fit_node(ds.graph)
        model.eval()
        pred = model.predict(ds.graph)
        node = next(int(v) for v in ds.motif_nodes if pred[v] == ds.graph.y[v])
        return ds, model, node

    def test_full_revelio_pipeline(self, pipeline):
        ds, model, node = pipeline
        explanation = Revelio(model, epochs=80, lr=0.05, seed=0).explain(
            ds.graph, target=node)

        # evaluation
        inst = [Instance(ds.graph, node)]
        fm = fidelity_minus(model, inst, [explanation], 0.7)
        auc = explanation_auc(ds.graph, explanation)
        assert np.isfinite(fm)
        assert 0.0 <= auc <= 1.0

        # flow-level drill-down
        motif_nodes = set(ds.motif_nodes.tolist())
        mass = mass_through_nodes(explanation, motif_nodes)
        assert 0.0 <= mass <= 1.0

        # presentation
        text = render_explanation(ds.graph, explanation, k=6)
        assert "explanatory edges" in text
        dot = explanation_to_dot(ds.graph, explanation, k=6)
        assert dot.startswith("digraph")

    def test_three_flow_methods_agree_on_structure(self, pipeline):
        ds, model, node = pipeline
        explanations = []
        for name, cfg in (("gnn_lrp", {}),
                          ("flowx", {"samples": 2, "finetune_epochs": 20}),
                          ("revelio", {"epochs": 60})):
            explanations.append(
                make_explainer(name, model, seed=0, **cfg).explain(ds.graph, target=node)
            )
        table = format_flow_comparison(explanations, k=5)
        assert table.count("[") >= 3
        matrix, names = agreement_matrix(explanations, k=10)
        assert matrix.shape == (3, 3)
        # flow methods on a clean motif instance should overlap at least some
        assert matrix[np.triu_indices(3, 1)].max() > 0.0

    def test_counterfactual_end_to_end(self, pipeline):
        ds, model, node = pipeline
        cf = Revelio(model, epochs=80, lr=0.05, seed=0).explain(
            ds.graph, target=node, mode="counterfactual")
        inst = [Instance(ds.graph, node)]
        fp = fidelity_plus(model, inst, [cf], 0.7)
        assert np.isfinite(fp)


class TestGraphClassificationPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        ds = load_dataset("mutag", scale=0.2, seed=2)
        model = build_model("gin", "graph", ds.num_features, ds.num_classes,
                            hidden=16, rng=2)
        Trainer(model, lr=0.02, weight_decay=0.0, epochs=80,
                patience=None).fit_graphs(ds.graphs, batch_size=64, rng=2)
        model.eval()
        g = next(g for g in ds.graphs if int(g.y) == 1 and model.predict(g)[0] == 1)
        return ds, model, g

    def test_flow_statistics_of_instance(self, pipeline):
        _, model, g = pipeline
        fi = enumerate_flows(g, model.num_layers)
        stats = flow_statistics(fi)
        assert stats.num_flows > g.num_edges  # flows outnumber edges
        assert stats.ambiguous_edge_fraction > 0  # Fig. 1's premise holds

    def test_explanation_recovers_motif_mass(self, pipeline):
        _, model, g = pipeline
        explanation = Revelio(model, epochs=120, lr=0.05, alpha=0.01, seed=0).explain(g)
        motif_atoms = {u for u, v in g.motif_edges} | {v for u, v in g.motif_edges}
        mass = mass_through_nodes(explanation, motif_atoms)
        assert mass > 0.0

    def test_robustness_to_input_perturbation(self, pipeline):
        """Explaining a noisy copy must not crash and must stay finite."""
        _, model, g = pipeline
        noisy = perturb_features(add_noise_edges(g, 2, rng=0), 0.05, rng=0)
        explanation = Revelio(model, epochs=30, seed=0).explain(noisy)
        assert np.isfinite(explanation.edge_scores).all()
        assert explanation.edge_scores.shape == (noisy.num_edges,)


class TestFailureInjection:
    def test_empty_context_raises_cleanly(self):
        """A node with no incoming paths still yields a valid explanation
        (its only flow is the self-loop chain)."""
        from repro.graph import Graph

        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((3, 4)),
                  y=np.array([0, 1, 0]),
                  train_mask=np.array([True, True, True]))
        model = build_model("gcn", "node", 4, 2, hidden=8, rng=0)
        model.eval()
        e = Revelio(model, epochs=5, seed=0).explain(g, target=2)
        assert e.flow_index.num_flows == 1  # 2 -> 2 -> 2 -> 2 only

    def test_flow_explosion_guard_end_to_end(self):
        from repro.errors import FlowError
        from repro.graph import Graph, erdos_renyi_edges

        edges = erdos_renyi_edges(30, 0.6, rng=0)
        g = Graph(edge_index=edges, x=np.ones((30, 4)))
        model = build_model("gcn", "node", 4, 2, hidden=8, rng=0)
        model.eval()
        with pytest.raises(FlowError):
            Revelio(model, max_flows=100, epochs=5).explain(g, target=0)

    def test_disconnected_graph_classification(self):
        from repro.graph import Graph

        g = Graph(edge_index=np.array([[0, 1], [1, 0]]), x=np.ones((5, 4)), y=0)
        model = build_model("gin", "graph", 4, 2, hidden=8, rng=0)
        model.eval()
        e = Revelio(model, epochs=5, seed=0).explain(g)
        assert np.isfinite(e.edge_scores).all()
