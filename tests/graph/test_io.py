"""Serialization round trips."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph, load_graph, load_state_dict, save_graph, save_state_dict


def full_graph():
    return Graph(
        edge_index=np.array([[0, 1], [1, 2]]),
        x=np.arange(9.0).reshape(3, 3),
        y=np.array([0, 1, 0]),
        train_mask=np.array([True, False, True]),
        val_mask=np.array([False, True, False]),
        test_mask=np.array([False, False, False]),
        motif_edges={(0, 1)},
        meta={"dataset": "test", "scale": 0.5},
    )


class TestGraphIO:
    def test_roundtrip_everything(self, tmp_path):
        g = full_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        back = load_graph(path)
        assert np.array_equal(back.edge_index, g.edge_index)
        assert np.allclose(back.x, g.x)
        assert np.array_equal(back.y, g.y)
        assert np.array_equal(back.train_mask, g.train_mask)
        assert back.motif_edges == g.motif_edges
        assert back.meta["dataset"] == "test"

    def test_scalar_label(self, tmp_path):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 2)), y=1)
        save_graph(g, tmp_path / "g.npz")
        assert load_graph(tmp_path / "g.npz").y == 1

    def test_no_label(self, tmp_path):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 2)))
        save_graph(g, tmp_path / "g.npz")
        assert load_graph(tmp_path / "g.npz").y is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(tmp_path / "nope.npz")


class TestStateDictIO:
    def test_roundtrip(self, tmp_path):
        state = {"layer.weight": np.ones((3, 2)), "layer.bias": np.zeros(2)}
        save_state_dict(state, tmp_path / "m.npz")
        back = load_state_dict(tmp_path / "m.npz")
        assert set(back) == set(state)
        assert np.allclose(back["layer.weight"], state["layer.weight"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_state_dict(tmp_path / "nope.npz")

    def test_model_roundtrip(self, tmp_path):
        from repro.nn import build_model

        model = build_model("gcn", "node", 4, 2, hidden=8, rng=0)
        save_state_dict(model.state_dict(), tmp_path / "model.npz")
        twin = build_model("gcn", "node", 4, 2, hidden=8, rng=99)
        twin.load_state_dict(load_state_dict(tmp_path / "model.npz"))
        for (n1, p1), (n2, p2) in zip(model.named_parameters(), twin.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.numpy(), p2.numpy())
