"""Random-graph generator structural properties."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (
    balanced_tree_edges,
    barabasi_albert_edges,
    cycle_edges,
    erdos_renyi_edges,
    house_motif_edges,
    path_edges,
    sbm_edges,
)


def as_pairs(edge_index):
    return set(zip(edge_index[0].tolist(), edge_index[1].tolist()))


def is_symmetric(edge_index):
    pairs = as_pairs(edge_index)
    return all((v, u) in pairs for u, v in pairs)


class TestBarabasiAlbert:
    def test_all_nodes_connected(self):
        e = barabasi_albert_edges(30, 2, rng=0)
        touched = set(e[0].tolist()) | set(e[1].tolist())
        assert touched == set(range(30))

    def test_symmetric(self):
        assert is_symmetric(barabasi_albert_edges(25, 3, rng=1))

    def test_no_self_loops(self):
        e = barabasi_albert_edges(25, 2, rng=2)
        assert (e[0] != e[1]).all()

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            barabasi_albert_edges(3, 5)

    def test_hub_formation(self):
        e = barabasi_albert_edges(200, 2, rng=3)
        deg = np.bincount(e[1], minlength=200)
        assert deg.max() > 3 * np.median(deg)  # heavy tail


class TestTree:
    def test_node_count(self):
        edges, n = balanced_tree_edges(2, 3)
        assert n == 15  # 1 + 2 + 4 + 8

    def test_edge_count(self):
        edges, n = balanced_tree_edges(2, 3)
        assert edges.shape[1] == 2 * (n - 1)

    def test_symmetric(self):
        edges, _ = balanced_tree_edges(3, 2)
        assert is_symmetric(edges)


class TestErdosRenyi:
    def test_density_scales_with_p(self):
        sparse = erdos_renyi_edges(50, 0.05, rng=0).shape[1]
        dense = erdos_renyi_edges(50, 0.5, rng=0).shape[1]
        assert dense > sparse

    def test_p_zero_empty(self):
        assert erdos_renyi_edges(10, 0.0, rng=0).shape[1] == 0


class TestSBM:
    def test_homophily(self):
        e = sbm_edges([25, 25], 0.5, 0.01, rng=0)
        labels = np.array([0] * 25 + [1] * 25)
        same = (labels[e[0]] == labels[e[1]]).mean()
        assert same > 0.8

    def test_symmetric(self):
        assert is_symmetric(sbm_edges([10, 10], 0.3, 0.1, rng=1))


class TestMotifs:
    def test_cycle_structure(self):
        e = cycle_edges([0, 1, 2, 3])
        assert as_pairs(e) == {(0, 1), (1, 2), (2, 3), (3, 0),
                               (1, 0), (2, 1), (3, 2), (0, 3)}

    def test_cycle_min_size(self):
        with pytest.raises(DatasetError):
            cycle_edges([0, 1])

    def test_path_structure(self):
        e = path_edges([5, 6, 7])
        assert as_pairs(e) == {(5, 6), (6, 5), (6, 7), (7, 6)}

    def test_house_size(self):
        e = house_motif_edges([0, 1, 2, 3, 4])
        assert e.shape[1] == 12  # 6 undirected edges

    def test_house_exact_shape(self):
        e = house_motif_edges([0, 1, 2, 3, 4])
        undirected = {(min(u, v), max(u, v)) for u, v in as_pairs(e)}
        assert undirected == {(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4)}

    def test_house_wrong_size(self):
        with pytest.raises(DatasetError):
            house_motif_edges([0, 1, 2])

    def test_generators_deterministic_with_seed(self):
        a = barabasi_albert_edges(30, 2, rng=7)
        b = barabasi_albert_edges(30, 2, rng=7)
        assert np.array_equal(a, b)
