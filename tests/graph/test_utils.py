"""Graph utilities: k-hop subgraphs, induction, conversions."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    add_reverse_edges,
    coalesce_edges,
    connected_components,
    edge_list,
    from_networkx,
    induced_subgraph,
    k_hop_subgraph,
    to_csr,
    to_networkx,
    to_undirected,
)


@pytest.fixture
def chain():
    """0 -> 1 -> 2 -> 3 -> 4 plus a detached pair 5 -> 6."""
    return Graph(edge_index=np.array([[0, 1, 2, 3, 5], [1, 2, 3, 4, 6]]),
                 x=np.ones((7, 2)))


class TestCoalesce:
    def test_removes_duplicates(self):
        e = coalesce_edges(np.array([[0, 0, 1], [1, 1, 0]]))
        assert e.shape == (2, 2)

    def test_empty(self):
        assert coalesce_edges(np.zeros((2, 0), dtype=int)).shape == (2, 0)

    def test_sorted_output(self):
        e = coalesce_edges(np.array([[2, 0], [0, 1]]))
        assert e[0].tolist() == [0, 2]


class TestReverseAndUndirected:
    def test_add_reverse(self):
        e = add_reverse_edges(np.array([[0], [1]]))
        pairs = set(zip(e[0].tolist(), e[1].tolist()))
        assert pairs == {(0, 1), (1, 0)}

    def test_to_undirected_graph(self, chain):
        und = to_undirected(chain)
        assert und.has_edge(1, 0)
        assert und.num_edges == 10


class TestKHop:
    def test_one_hop_incoming(self, chain):
        nodes, edge_mask = k_hop_subgraph(chain, 2, 1)
        assert set(nodes.tolist()) == {1, 2}
        assert edge_mask.sum() == 1  # only 1->2

    def test_three_hops(self, chain):
        nodes, _ = k_hop_subgraph(chain, 4, 3)
        assert set(nodes.tolist()) == {1, 2, 3, 4}

    def test_follows_direction_only(self, chain):
        nodes, _ = k_hop_subgraph(chain, 0, 2)
        assert set(nodes.tolist()) == {0}  # nothing points into 0

    def test_out_of_range_target(self, chain):
        with pytest.raises(GraphError):
            k_hop_subgraph(chain, 99, 2)

    def test_hops_zero(self, chain):
        nodes, edge_mask = k_hop_subgraph(chain, 3, 0)
        assert nodes.tolist() == [3]
        assert edge_mask.sum() == 0


class TestInducedSubgraph:
    def test_relabels_nodes(self, chain):
        sub, node_ids, edge_mask = induced_subgraph(chain, np.array([2, 3, 4]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert node_ids.tolist() == [2, 3, 4]

    def test_features_sliced(self, chain):
        chain.x = np.arange(14.0).reshape(7, 2)
        sub, node_ids, _ = induced_subgraph(chain, np.array([1, 3]))
        assert np.allclose(sub.x, chain.x[[1, 3]])

    def test_labels_and_masks_sliced(self):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((3, 1)),
                  y=np.array([7, 8, 9]), train_mask=np.array([True, False, True]))
        sub, _, _ = induced_subgraph(g, np.array([0, 2]))
        assert sub.y.tolist() == [7, 9]
        assert sub.train_mask.tolist() == [True, True]

    def test_motif_edges_relabelled(self):
        g = Graph(edge_index=np.array([[1, 2], [2, 1]]), x=np.ones((3, 1)),
                  motif_edges={(1, 2), (2, 1)})
        sub, _, _ = induced_subgraph(g, np.array([1, 2]))
        assert sub.motif_edges == frozenset({(0, 1), (1, 0)})

    def test_out_of_range(self, chain):
        with pytest.raises(GraphError):
            induced_subgraph(chain, np.array([0, 42]))

    def test_duplicate_ids_deduped(self, chain):
        sub, node_ids, _ = induced_subgraph(chain, np.array([1, 1, 2]))
        assert sub.num_nodes == 2


class TestConversions:
    def test_to_csr_shape(self, chain):
        adj = to_csr(chain)
        assert adj.shape == (7, 7)
        assert adj[0, 1] == 1.0

    def test_to_csr_weights(self, chain):
        adj = to_csr(chain, weights=np.full(chain.num_edges, 2.0))
        assert adj[0, 1] == 2.0

    def test_connected_components(self, chain):
        labels = connected_components(chain)
        assert labels[0] == labels[4]
        assert labels[0] != labels[5]

    def test_edge_list(self, chain):
        assert (0, 1) in edge_list(chain)

    def test_networkx_roundtrip(self, chain):
        nx_g = to_networkx(chain)
        back = from_networkx(nx_g, x=chain.x)
        assert back.num_nodes == chain.num_nodes
        assert set(edge_list(back)) == set(edge_list(chain))

    def test_from_networkx_undirected_doubles(self):
        import networkx as nx

        g = nx.Graph([(0, 1)])
        converted = from_networkx(g)
        assert converted.num_edges == 2
