"""Property-based invariants of graph operations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, coalesce_edges, induced_subgraph, k_hop_subgraph


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 12))
    m = draw(st.integers(0, 30))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    if m:
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        keep = src != dst
        edge_index = coalesce_edges(np.stack([src[keep], dst[keep]]))
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)
    return Graph(edge_index=edge_index, x=rng.normal(size=(n, 3)))


@settings(max_examples=50, deadline=None)
@given(g=random_graphs(), seed=st.integers(0, 1000))
def test_with_edges_subset_of_original(g, seed):
    rng = np.random.default_rng(seed)
    keep = rng.random(g.num_edges) < 0.5
    sub = g.with_edges(keep)
    original = set(zip(g.src.tolist(), g.dst.tolist()))
    for u, v in zip(sub.src.tolist(), sub.dst.tolist()):
        assert (u, v) in original
    assert sub.num_edges == int(keep.sum())


@settings(max_examples=50, deadline=None)
@given(g=random_graphs(), hops=st.integers(0, 4), seed=st.integers(0, 1000))
def test_k_hop_contains_target_and_grows(g, hops, seed):
    rng = np.random.default_rng(seed)
    target = int(rng.integers(g.num_nodes))
    nodes, edge_mask = k_hop_subgraph(g, target, hops)
    assert target in nodes
    bigger, _ = k_hop_subgraph(g, target, hops + 1)
    assert set(nodes.tolist()) <= set(bigger.tolist())
    # every kept edge has both endpoints in the neighborhood
    in_set = set(nodes.tolist())
    for e in np.flatnonzero(edge_mask):
        assert int(g.src[e]) in in_set and int(g.dst[e]) in in_set


@settings(max_examples=50, deadline=None)
@given(g=random_graphs(), seed=st.integers(0, 1000))
def test_induced_subgraph_edge_consistency(g, seed):
    rng = np.random.default_rng(seed)
    chosen = np.unique(rng.integers(0, g.num_nodes, size=max(1, g.num_nodes // 2)))
    sub, node_ids, edge_mask = induced_subgraph(g, chosen)
    assert sub.num_nodes == node_ids.size
    # relabelled edges map back to original endpoints
    for i in range(sub.num_edges):
        u, v = int(node_ids[sub.src[i]]), int(node_ids[sub.dst[i]])
        assert g.has_edge(u, v)
    # edge count matches mask
    assert sub.num_edges == int(edge_mask.sum())


@settings(max_examples=50, deadline=None)
@given(g=random_graphs())
def test_degree_sums_equal_edge_count(g):
    assert g.in_degree().sum() == g.num_edges
    assert g.out_degree().sum() == g.num_edges


@settings(max_examples=30, deadline=None)
@given(g=random_graphs())
def test_coalesce_idempotent(g):
    once = coalesce_edges(g.edge_index)
    twice = coalesce_edges(once)
    assert np.array_equal(once, twice)
