"""Graph perturbation transforms."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    add_noise_edges,
    drop_edges,
    perturb_features,
    shuffle_labels,
    zero_features,
)


@pytest.fixture
def graph():
    return Graph(edge_index=np.array([[0, 1, 2, 3], [1, 2, 3, 0]]),
                 x=np.ones((4, 3)), y=np.array([0, 1, 0, 1]))


class TestNoiseEdges:
    def test_adds_edges(self, graph):
        out = add_noise_edges(graph, 3, rng=0)
        assert out.num_edges > graph.num_edges

    def test_bidirectional(self, graph):
        out = add_noise_edges(graph, 5, rng=0)
        pairs = set(zip(out.src.tolist(), out.dst.tolist()))
        new = pairs - set(zip(graph.src.tolist(), graph.dst.tolist()))
        for u, v in new:
            assert (v, u) in pairs

    def test_zero_edges_noop_structure(self, graph):
        out = add_noise_edges(graph, 0, rng=0)
        assert out.num_edges == graph.num_edges

    def test_negative_rejected(self, graph):
        with pytest.raises(GraphError):
            add_noise_edges(graph, -1)

    def test_original_untouched(self, graph):
        before = graph.edge_index.copy()
        add_noise_edges(graph, 5, rng=0)
        assert np.array_equal(graph.edge_index, before)

    def test_no_self_loops_added(self, graph):
        out = add_noise_edges(graph, 20, rng=1)
        assert (out.src != out.dst).all()


class TestDropEdges:
    def test_fraction_removed(self, graph):
        out = drop_edges(graph, 0.5, rng=0)
        assert out.num_edges <= graph.num_edges

    def test_zero_keeps_all(self, graph):
        assert drop_edges(graph, 0.0, rng=0).num_edges == graph.num_edges

    def test_one_drops_all(self, graph):
        assert drop_edges(graph, 1.0, rng=0).num_edges == 0

    def test_bad_fraction(self, graph):
        with pytest.raises(GraphError):
            drop_edges(graph, 1.5)


class TestFeaturePerturbations:
    def test_gaussian_noise(self, graph):
        out = perturb_features(graph, 0.1, rng=0)
        assert not np.allclose(out.x, graph.x)
        assert np.abs(out.x - graph.x).mean() < 0.5

    def test_zero_std_identity(self, graph):
        out = perturb_features(graph, 0.0, rng=0)
        assert np.allclose(out.x, graph.x)

    def test_zero_features_fraction(self, graph):
        out = zero_features(graph, 1.0, rng=0)
        assert np.allclose(out.x, 0.0)

    def test_zero_features_none(self, graph):
        out = zero_features(graph, 0.0, rng=0)
        assert np.allclose(out.x, graph.x)

    def test_zero_features_bad_fraction(self, graph):
        with pytest.raises(GraphError):
            zero_features(graph, -0.1)


class TestShuffleLabels:
    def test_multiset_preserved(self, graph):
        out = shuffle_labels(graph, rng=0)
        assert sorted(out.y.tolist()) == sorted(graph.y.tolist())

    def test_requires_array_labels(self, graph):
        graph.y = None
        with pytest.raises(GraphError):
            shuffle_labels(graph)
