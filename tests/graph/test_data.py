"""Graph container invariants and operations."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph


def make_graph(**overrides):
    defaults = dict(
        edge_index=np.array([[0, 1, 2], [1, 2, 0]]),
        x=np.eye(3),
    )
    defaults.update(overrides)
    return Graph(**defaults)


class TestValidation:
    def test_basic_construction(self):
        g = make_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.num_features == 3

    def test_bad_edge_index_shape(self):
        with pytest.raises(GraphError):
            make_graph(edge_index=np.array([0, 1, 2]))

    def test_bad_x_shape(self):
        with pytest.raises(GraphError):
            make_graph(x=np.ones(3))

    def test_edge_out_of_range(self):
        with pytest.raises(GraphError):
            make_graph(edge_index=np.array([[0, 5], [1, 0]]))

    def test_negative_node_id(self):
        with pytest.raises(GraphError):
            make_graph(edge_index=np.array([[-1], [0]]))

    def test_num_nodes_mismatch(self):
        with pytest.raises(GraphError):
            make_graph(num_nodes=7)

    def test_mask_shape_checked(self):
        with pytest.raises(GraphError):
            make_graph(train_mask=np.ones(5, dtype=bool))

    def test_labels_coerced_to_int(self):
        g = make_graph(y=np.array([0.0, 1.0, 2.0]))
        assert g.y.dtype == np.int64

    def test_motif_edges_coerced_to_frozenset(self):
        g = make_graph(motif_edges={(0, 1), (1, 2)})
        assert isinstance(g.motif_edges, frozenset)

    def test_empty_graph(self):
        g = Graph(edge_index=np.zeros((2, 0), dtype=int), x=np.ones((4, 2)))
        assert g.num_edges == 0
        assert g.num_nodes == 4

    def test_scalar_label(self):
        g = make_graph(y=1)
        assert g.y == 1

    def test_validate_rechecks(self):
        g = make_graph()
        g.edge_index = np.array([[0, 9], [1, 0]])
        with pytest.raises(GraphError):
            g.validate()


class TestAccessors:
    def test_src_dst(self):
        g = make_graph()
        assert g.src.tolist() == [0, 1, 2]
        assert g.dst.tolist() == [1, 2, 0]

    def test_degrees(self):
        g = make_graph()
        assert g.in_degree().tolist() == [1, 1, 1]
        assert g.out_degree().tolist() == [1, 1, 1]

    def test_has_edge(self):
        g = make_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_id_map_first_occurrence(self):
        g = Graph(edge_index=np.array([[0, 0], [1, 1]]), x=np.eye(2))
        assert g.edge_id_map()[(0, 1)] == 0

    def test_repr_mentions_sizes(self):
        assert "num_nodes=3" in repr(make_graph())


class TestWithEdges:
    def test_boolean_mask(self):
        g = make_graph()
        sub = g.with_edges(np.array([True, False, True]))
        assert sub.num_edges == 2
        assert sub.num_nodes == 3

    def test_index_array(self):
        g = make_graph()
        sub = g.with_edges(np.array([0, 2]))
        assert sub.src.tolist() == [0, 2]

    def test_wrong_mask_length(self):
        g = make_graph()
        with pytest.raises(GraphError):
            g.with_edges(np.array([True, False]))

    def test_preserves_metadata(self):
        g = make_graph(y=np.array([0, 1, 0]), motif_edges={(0, 1)})
        sub = g.with_edges(np.array([True, True, False]))
        assert sub.motif_edges == g.motif_edges
        assert np.array_equal(sub.y, g.y)

    def test_original_untouched(self):
        g = make_graph()
        g.with_edges(np.zeros(3, dtype=bool))
        assert g.num_edges == 3


class TestCopy:
    def test_deep_copy_arrays(self):
        g = make_graph(y=np.array([0, 1, 2]))
        c = g.copy()
        c.x[0, 0] = 99.0
        c.y[0] = 5
        assert g.x[0, 0] == 1.0
        assert g.y[0] == 0

    def test_copy_masks(self):
        g = make_graph(train_mask=np.array([True, False, True]))
        c = g.copy()
        c.train_mask[0] = False
        assert g.train_mask[0]
