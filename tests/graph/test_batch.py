"""GraphBatch disjoint-union invariants."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph, GraphBatch


def small(label, n=3):
    edges = np.array([[i for i in range(n - 1)], [i + 1 for i in range(n - 1)]])
    return Graph(edge_index=edges, x=np.ones((n, 4)), y=label)


class TestBatching:
    def test_offsets(self):
        batch = GraphBatch([small(0), small(1)])
        assert batch.num_nodes == 6
        assert batch.num_edges == 4
        # second graph's edges are offset by 3
        assert batch.edge_index[:, 2].tolist() == [3, 4]

    def test_batch_vector(self):
        batch = GraphBatch([small(0), small(1, n=2)])
        assert batch.batch.tolist() == [0, 0, 0, 1, 1]

    def test_labels_collected(self):
        batch = GraphBatch([small(0), small(1)])
        assert batch.y.tolist() == [0, 1]

    def test_missing_labels_gives_none(self):
        g = small(0)
        g.y = None
        assert GraphBatch([g, small(1)]).y is None

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            GraphBatch([])

    def test_inconsistent_features_rejected(self):
        g2 = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 7)), y=0)
        with pytest.raises(GraphError):
            GraphBatch([small(0), g2])

    def test_node_offsets(self):
        batch = GraphBatch([small(0), small(1, n=5)])
        assert batch.node_offsets().tolist() == [0, 3, 8]

    def test_len_and_repr(self):
        batch = GraphBatch([small(0)])
        assert len(batch) == 1
        assert "num_graphs=1" in repr(batch)


class TestMinibatches:
    def test_covers_all_graphs(self):
        graphs = [small(i % 2) for i in range(10)]
        seen = 0
        for b in GraphBatch.iter_minibatches(graphs, 3):
            seen += b.num_graphs
        assert seen == 10

    def test_shuffle_changes_order(self):
        graphs = [small(i % 2, n=2 + i % 3) for i in range(20)]
        rng = np.random.default_rng(0)
        batches = list(GraphBatch.iter_minibatches(graphs, 20, rng=rng))
        sizes = [g.num_nodes for g in batches[0].graphs]
        original = [g.num_nodes for g in graphs]
        assert sizes != original  # overwhelmingly likely

    def test_batch_size_larger_than_dataset(self):
        graphs = [small(0), small(1)]
        batches = list(GraphBatch.iter_minibatches(graphs, 100))
        assert len(batches) == 1
