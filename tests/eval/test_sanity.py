"""Model-randomization sanity checks."""

import numpy as np

from repro.core import Revelio
from repro.eval import model_randomization_check, randomize_model
from repro.explain import GradCAM, RandomExplainer


class TestRandomizeModel:
    def test_weights_replaced(self, node_model):
        twin = randomize_model(node_model, rng=0)
        originals = node_model.state_dict()
        for name, value in twin.state_dict().items():
            assert not np.allclose(value, originals[name])

    def test_original_untouched(self, node_model, mini_ba_shapes):
        before = node_model.predict_proba(mini_ba_shapes.graph)
        randomize_model(node_model, rng=0)
        after = node_model.predict_proba(mini_ba_shapes.graph)
        assert np.allclose(before, after)

    def test_randomized_predictions_differ(self, node_model, mini_ba_shapes):
        twin = randomize_model(node_model, rng=0)
        assert not np.allclose(node_model.predict_proba(mini_ba_shapes.graph),
                               twin.predict_proba(mini_ba_shapes.graph))

    def test_deterministic_with_seed(self, node_model):
        a = randomize_model(node_model, rng=7).state_dict()
        b = randomize_model(node_model, rng=7).state_dict()
        for name in a:
            assert np.allclose(a[name], b[name])


class TestModelRandomizationCheck:
    def test_revelio_tracks_model(self, node_model, mini_ba_shapes, good_motif_node):
        result = model_randomization_check(
            lambda m: Revelio(m, epochs=25, lr=0.05, seed=0),
            node_model, mini_ba_shapes.graph, target=good_motif_node)
        assert -1.0 <= result.rank_correlation <= 1.0
        assert 0.0 <= result.top_k_overlap <= 1.0

    def test_gradient_method_tracks_model(self, node_model, mini_ba_shapes,
                                          good_motif_node):
        result = model_randomization_check(
            lambda m: GradCAM(m), node_model, mini_ba_shapes.graph,
            target=good_motif_node)
        assert np.isfinite(result.rank_correlation)

    def test_model_independent_method_fails(self, node_model, mini_ba_shapes,
                                            good_motif_node):
        """The random explainer with a fixed seed ignores the model entirely
        — the check must flag it (overlap 1.0 ≥ threshold)."""
        result = model_randomization_check(
            lambda m: RandomExplainer(m, seed=0),
            node_model, mini_ba_shapes.graph, target=good_motif_node)
        assert result.top_k_overlap == 1.0
        assert not result.passes

    def test_repr_verdict(self, node_model, mini_ba_shapes, good_motif_node):
        result = model_randomization_check(
            lambda m: RandomExplainer(m, seed=0),
            node_model, mini_ba_shapes.graph, target=good_motif_node)
        assert "FAIL" in repr(result)
