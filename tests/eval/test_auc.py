"""ROC AUC implementation and explanation-AUC protocol."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import explanation_auc, mean_explanation_auc, roc_auc
from repro.explain.base import Explanation
from repro.graph import Graph


class TestROCAUC:
    def test_perfect_separation(self):
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_perfect_inversion(self):
        assert roc_auc(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.random(2000) < 0.5
        scores = rng.random(2000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        # all scores equal → AUC exactly 0.5
        assert roc_auc(np.array([0, 1, 0, 1]), np.zeros(4)) == 0.5

    def test_matches_mann_whitney(self):
        rng = np.random.default_rng(1)
        labels = rng.random(50) < 0.4
        scores = rng.normal(size=50) + labels
        from scipy.stats import mannwhitneyu

        u = mannwhitneyu(scores[labels], scores[~labels]).statistic
        expected = u / (labels.sum() * (~labels).sum())
        assert roc_auc(labels, scores) == pytest.approx(expected)

    def test_degenerate_labels_raise(self):
        with pytest.raises(EvaluationError):
            roc_auc(np.ones(4, dtype=bool), np.zeros(4))
        with pytest.raises(EvaluationError):
            roc_auc(np.zeros(4, dtype=bool), np.zeros(4))

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            roc_auc(np.array([0, 1]), np.zeros(3))


class TestExplanationAUC:
    @pytest.fixture
    def motif_graph(self):
        return Graph(edge_index=np.array([[0, 1, 2, 3], [1, 2, 3, 0]]),
                     x=np.ones((4, 2)), motif_edges={(0, 1), (1, 2)})

    def test_perfect_explanation(self, motif_graph):
        e = Explanation(edge_scores=np.array([1.0, 0.9, 0.1, 0.0]),
                        predicted_class=0, method="t")
        assert explanation_auc(motif_graph, e) == 1.0

    def test_context_restriction(self, motif_graph):
        e = Explanation(edge_scores=np.array([1.0, 0.0, 0.5, 0.5]),
                        predicted_class=0, method="t",
                        context_edge_positions=np.array([0, 2]))
        # within context: edge 0 (motif, score 1) vs edge 2 (non, 0.5) → AUC 1
        assert explanation_auc(motif_graph, e) == 1.0

    def test_no_ground_truth(self):
        g = Graph(edge_index=np.array([[0], [1]]), x=np.ones((2, 1)))
        e = Explanation(edge_scores=np.zeros(1), predicted_class=0, method="t")
        with pytest.raises(EvaluationError):
            explanation_auc(g, e)

    def test_mean_skips_degenerate(self, motif_graph):
        good = Explanation(edge_scores=np.array([1.0, 0.9, 0.1, 0.0]),
                           predicted_class=0, method="t")
        # degenerate: context covers only motif edges → undefined AUC
        degenerate = Explanation(edge_scores=np.ones(4), predicted_class=0, method="t",
                                 context_edge_positions=np.array([0, 1]))
        mean = mean_explanation_auc([motif_graph, motif_graph], [good, degenerate])
        assert mean == 1.0

    def test_mean_all_degenerate_raises(self, motif_graph):
        degenerate = Explanation(edge_scores=np.ones(4), predicted_class=0, method="t",
                                 context_edge_positions=np.array([0, 1]))
        with pytest.raises(EvaluationError):
            mean_explanation_auc([motif_graph], [degenerate])
