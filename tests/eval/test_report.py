"""Benchmark-report aggregation."""

from pathlib import Path

import pytest

from repro.eval import build_report, collect_artifacts, write_report


@pytest.fixture
def results(tmp_path):
    (tmp_path / "table3_datasets.txt").write_text("Table III rows\n")
    (tmp_path / "fig3_fidelity_minus_x_gcn.txt").write_text("fig3 rows\n")
    (tmp_path / "ablation_topk.txt").write_text("ablation rows\n")
    (tmp_path / "unrelated.txt").write_text("ignore me\n")
    return tmp_path


class TestCollect:
    def test_collects_recognized_only(self, results):
        artifacts = collect_artifacts(results)
        names = {a.name for a in artifacts}
        assert "table3_datasets" in names
        assert "unrelated" not in names

    def test_missing_dir_empty(self, tmp_path):
        assert collect_artifacts(tmp_path / "nope") == []

    def test_sections_assigned(self, results):
        sections = {a.name: a.section for a in collect_artifacts(results)}
        assert "Table III" in sections["table3_datasets"]
        assert "Fig. 3" in sections["fig3_fidelity_minus_x_gcn"]


class TestBuild:
    def test_report_structure(self, results):
        text = build_report(results)
        assert text.startswith("# Revelio reproduction report")
        assert "## Table III" in text
        assert "```" in text
        assert "fig3 rows" in text

    def test_empty_report_hint(self, tmp_path):
        text = build_report(tmp_path)
        assert "no artifacts found" in text

    def test_write_report(self, results, tmp_path):
        out = write_report(results, tmp_path / "report.md")
        assert out.exists()
        assert "Table III rows" in out.read_text()

    def test_real_results_dir_if_present(self):
        real = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
        if not real.exists():
            pytest.skip("benchmarks not yet run")
        text = build_report(real)
        assert "#" in text
