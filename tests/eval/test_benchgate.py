"""The bench regression gate: committed floors vs. the latest history run."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.errors import BenchError
from repro.eval.benchgate import (
    check_run,
    load_latest_run,
    load_reference,
    run_bench_check,
)


def reference_payload() -> dict:
    """A miniature committed BENCH_perf.json with every threshold kind."""
    return {
        "scale": 0.2,
        "speedup_floor": 3.0,
        "workloads": {
            "flowx": {"speedup": 3.7},
            "gnn_lrp": {"speedup": 3.3},
            "fidelity_curve": {"speedup": 5.4},
            "revelio_warm_cache": {"speedup": 400.0, "floor": 1.2},
            "scaling_law": {"speedup_largest": 3.3, "speedup_floor": 2.0},
            "training_epoch": {"speedup_largest": 2.2, "speedup_floor": 2.0,
                               "max_grad_diff": 0.0, "grad_tol": 1e-8},
            "obs_overhead": {"overhead_fraction": 0.001, "ceiling": 0.05},
            "runner_scaling": {"speedup_floor": 2.0,
                               "orchestration": {"speedup": 3.7}},
        },
    }


def passing_run() -> dict:
    """A fresh run whose measurements meet every committed threshold."""
    payload = copy.deepcopy(reference_payload())
    return {"timestamp": "2026-08-08T00:00:00+00:00", "git_sha": "abc1234",
            "payload": payload}


def write_artifacts(tmp_path, records, reference):
    history = tmp_path / "BENCH_history.jsonl"
    history.write_text("".join(json.dumps(r) + "\n" for r in records))
    ref_path = tmp_path / "BENCH_perf.json"
    ref_path.write_text(json.dumps(reference))
    return history, ref_path


class TestCheckRun:
    def test_passing_run_has_no_failures(self):
        assert check_run(passing_run()["payload"], reference_payload()) == []

    def test_per_workload_floor_regression_fails(self):
        run = passing_run()["payload"]
        run["workloads"]["scaling_law"]["speedup_largest"] = 1.4
        failures = check_run(run, reference_payload())
        assert any("scaling_law" in f and "1.4" in f for f in failures)

    def test_training_epoch_floor_and_parity(self):
        run = passing_run()["payload"]
        run["workloads"]["training_epoch"]["speedup_largest"] = 1.1
        run["workloads"]["training_epoch"]["max_grad_diff"] = 1e-5
        failures = check_run(run, reference_payload())
        assert any("training_epoch" in f and "floor" in f for f in failures)
        assert any("max_grad_diff" in f for f in failures)

    def test_warm_cache_floor_applies_to_speedup(self):
        run = passing_run()["payload"]
        run["workloads"]["revelio_warm_cache"]["speedup"] = 1.1
        failures = check_run(run, reference_payload())
        assert any("revelio_warm_cache" in f for f in failures)

    def test_overhead_ceiling_exceeded_fails(self):
        run = passing_run()["payload"]
        run["workloads"]["obs_overhead"]["overhead_fraction"] = 0.2
        failures = check_run(run, reference_payload())
        assert any("obs_overhead" in f and "ceiling" in f for f in failures)

    def test_orchestration_speedup_gates_runner_scaling(self):
        run = passing_run()["payload"]
        run["workloads"]["runner_scaling"]["orchestration"]["speedup"] = 1.2
        failures = check_run(run, reference_payload())
        assert any("runner_scaling" in f and "orchestration" in f
                   for f in failures)

    def test_missing_workload_is_a_regression(self):
        run = passing_run()["payload"]
        del run["workloads"]["training_epoch"]
        failures = check_run(run, reference_payload())
        assert any("training_epoch" in f and "missing" in f for f in failures)

    def test_headline_trio_needs_two_wins(self):
        run = passing_run()["payload"]
        run["workloads"]["flowx"]["speedup"] = 1.1
        assert check_run(run, reference_payload()) == []  # 2 of 3 still win
        run["workloads"]["gnn_lrp"]["speedup"] = 1.2
        failures = check_run(run, reference_payload())
        assert any("flowx/gnn_lrp/fidelity_curve" in f for f in failures)


class TestArtifactLoading:
    def test_latest_parseable_line_wins(self, tmp_path):
        old = passing_run()
        old["git_sha"] = "old0000"
        new = passing_run()
        history, _ = write_artifacts(tmp_path, [old, new], reference_payload())
        # A truncated trailing line (run killed mid-append) is skipped.
        with history.open("a") as fh:
            fh.write('{"timestamp": "2026-')
        assert load_latest_run(history)["git_sha"] == "abc1234"

    def test_missing_history_raises(self, tmp_path):
        with pytest.raises(BenchError, match="not found"):
            load_latest_run(tmp_path / "nope.jsonl")

    def test_history_without_records_raises(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text("not json\n\n[1, 2]\n")
        with pytest.raises(BenchError, match="no parseable run record"):
            load_latest_run(path)

    def test_reference_without_workloads_raises(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text('{"speedup_floor": 3.0}')
        with pytest.raises(BenchError, match="no workload table"):
            load_reference(path)


class TestExitContract:
    def test_pass_exits_zero(self, tmp_path, capsys):
        history, ref = write_artifacts(tmp_path, [passing_run()],
                                       reference_payload())
        assert run_bench_check(history_path=history, reference_path=ref) == 0
        assert "PASS" in capsys.readouterr().out

    def test_seeded_regression_exits_one(self, tmp_path, capsys):
        regressed = passing_run()
        regressed["payload"]["workloads"]["training_epoch"]["speedup_largest"] = 0.9
        history, ref = write_artifacts(tmp_path, [passing_run(), regressed],
                                       reference_payload())
        assert run_bench_check(history_path=history, reference_path=ref) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "training_epoch" in out

    def test_unreadable_artifacts_exit_two(self, tmp_path):
        assert run_bench_check(history_path=tmp_path / "missing.jsonl",
                               reference_path=tmp_path / "missing.json") == 2

    def test_cli_bench_check(self, tmp_path):
        history, ref = write_artifacts(tmp_path, [passing_run()],
                                       reference_payload())
        assert main(["bench", "--check", "--history", str(history),
                     "--reference", str(ref)]) == 0

    def test_cli_bench_summary(self, tmp_path, capsys):
        history, ref = write_artifacts(tmp_path, [passing_run()],
                                       reference_payload())
        assert main(["bench", "--history", str(history),
                     "--reference", str(ref)]) == 0
        out = capsys.readouterr().out
        assert "training_epoch" in out and "abc1234" in out


class TestCommittedArtifacts:
    def test_committed_history_passes_committed_floors(self):
        """The repository's own artifacts must satisfy the gate CI runs."""
        import repro
        from pathlib import Path

        root = Path(repro.__file__).resolve().parents[2]
        assert run_bench_check(history_path=root / "BENCH_history.jsonl",
                               reference_path=root / "BENCH_perf.json",
                               verbose=False) == 0
