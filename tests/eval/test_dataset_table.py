"""Table III runner and the CLI report command."""

import pytest

from repro.cli import main
from repro.eval import ExperimentConfig, run_dataset_table


@pytest.fixture(autouse=True)
def fast_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_SCALE", "0.12")


class TestDatasetTable:
    def test_rows_cover_requested_datasets(self):
        result = run_dataset_table(dataset_names=("tree_cycles",),
                                   convs=("gcn",),
                                   config=ExperimentConfig(scale=0.12))
        assert len(result["rows"]) == 2  # header + one dataset
        assert "tree_cycles" in result["rows"][1]
        assert "tree_cycles" in result["records"]

    def test_accuracy_recorded(self):
        result = run_dataset_table(dataset_names=("tree_cycles",),
                                   convs=("gcn",),
                                   config=ExperimentConfig(scale=0.12))
        acc = result["records"]["tree_cycles"]["accuracy"]["gcn"]
        assert 0.0 <= acc <= 1.0

    def test_gat_na_on_synthetics(self):
        result = run_dataset_table(dataset_names=("tree_cycles",),
                                   convs=("gat",),
                                   config=ExperimentConfig(scale=0.12))
        assert result["records"]["tree_cycles"]["accuracy"]["gat"] is None
        assert "N/A" in result["rows"][1]

    def test_cache_hit_reads_json_accuracy(self):
        config = ExperimentConfig(scale=0.12)
        first = run_dataset_table(dataset_names=("tree_cycles",), convs=("gcn",),
                                  config=config)
        second = run_dataset_table(dataset_names=("tree_cycles",), convs=("gcn",),
                                   config=config)
        a = first["records"]["tree_cycles"]["accuracy"]["gcn"]
        b = second["records"]["tree_cycles"]["accuracy"]["gcn"]
        assert a == pytest.approx(b)


class TestCLIReport:
    def test_report_to_stdout(self, capsys, tmp_path):
        (tmp_path / "table3_x.txt").write_text("rows\n")
        assert main(["report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_report_to_file(self, capsys, tmp_path):
        (tmp_path / "fig3_x.txt").write_text("rows\n")
        out_file = tmp_path / "report.md"
        assert main(["report", "--results", str(tmp_path),
                     "-o", str(out_file)]) == 0
        assert out_file.exists()
        assert "Fig. 3" in out_file.read_text()

    def test_report_empty_dir(self, capsys, tmp_path):
        assert main(["report", "--results", str(tmp_path / "none")]) == 0
        assert "no artifacts" in capsys.readouterr().out
