"""Fidelity metrics (Eqs. 10/11)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import (
    Instance,
    class_probability,
    fidelity_curve,
    fidelity_minus,
    fidelity_plus,
)
from repro.explain.base import Explanation


def perfect_explanation(model, graph, target=None):
    """Oracle scores: each edge's true leave-one-out importance."""
    c = int(model.predict(graph)[target if target is not None else 0])
    p_full = class_probability(model, graph, c, target=target)
    scores = np.zeros(graph.num_edges)
    for e in range(graph.num_edges):
        keep = np.ones(graph.num_edges, dtype=bool)
        keep[e] = False
        p = class_probability(model, graph.with_edges(keep), c, target=target)
        scores[e] = p_full - p
    return Explanation(edge_scores=scores, predicted_class=c, method="oracle",
                       target=target)


class TestClassProbability:
    def test_graph_task(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        p = class_probability(graph_model, g, 0)
        assert 0.0 <= p <= 1.0

    def test_node_task(self, node_model, mini_ba_shapes):
        p = class_probability(node_model, mini_ba_shapes.graph, 1, target=3)
        assert 0.0 <= p <= 1.0

    def test_probabilities_sum(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        total = sum(class_probability(graph_model, g, c) for c in range(2))
        assert total == pytest.approx(1.0)


class TestFidelityMechanics:
    def test_mismatched_lengths(self, graph_model, mini_mutag):
        inst = [Instance(mini_mutag.graphs[0])]
        with pytest.raises(EvaluationError):
            fidelity_minus(graph_model, inst, [], 0.5)

    def test_empty_instances(self, graph_model):
        with pytest.raises(EvaluationError):
            fidelity_minus(graph_model, [], [], 0.5)

    def test_fidelity_zero_sparsity_keeps_graph(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        e = Explanation(edge_scores=np.random.default_rng(0).random(g.num_edges),
                        predicted_class=int(graph_model.predict(g)[0]), method="r")
        fm = fidelity_minus(graph_model, [Instance(g)], [e], 0.0)
        assert fm == pytest.approx(0.0, abs=1e-12)  # nothing removed

    def test_oracle_beats_anti_oracle(self, graph_model, mini_mutag):
        g = next(g for g in mini_mutag.graphs
                 if int(g.y) == 1 and graph_model.predict(g)[0] == 1)
        oracle = perfect_explanation(graph_model, g)
        anti = Explanation(edge_scores=-oracle.edge_scores,
                           predicted_class=oracle.predicted_class, method="anti")
        inst = [Instance(g)]
        fp_oracle = fidelity_plus(graph_model, inst, [oracle], 0.7)
        fp_anti = fidelity_plus(graph_model, inst, [anti], 0.7)
        assert fp_oracle >= fp_anti

    def test_curve_shape(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        e = Explanation(edge_scores=np.random.default_rng(0).random(g.num_edges),
                        predicted_class=int(graph_model.predict(g)[0]), method="r")
        curve = fidelity_curve(graph_model, [Instance(g)], [e], [0.5, 0.7, 0.9])
        assert set(curve) == {0.5, 0.7, 0.9}

    def test_curve_bad_metric(self, graph_model, mini_mutag):
        g = mini_mutag.graphs[0]
        e = Explanation(edge_scores=np.zeros(g.num_edges), predicted_class=0, method="r")
        with pytest.raises(EvaluationError):
            fidelity_curve(graph_model, [Instance(g)], [e], [0.5], metric="abs")

    def test_fidelity_bounded(self, graph_model, mini_mutag):
        # Fidelity ∈ (1/C - 1, 1) theoretically (paper §V-B).
        g = mini_mutag.graphs[0]
        e = Explanation(edge_scores=np.random.default_rng(1).random(g.num_edges),
                        predicted_class=int(graph_model.predict(g)[0]), method="r")
        for s in (0.5, 0.9):
            for fn in (fidelity_minus, fidelity_plus):
                v = fn(graph_model, [Instance(g)], [e], s)
                assert -1.0 < v < 1.0

    def test_node_task_respects_context(self, node_model, mini_ba_shapes,
                                        good_motif_node):
        graph = mini_ba_shapes.graph
        ctx_edges = np.array([0, 1, 2])
        e = Explanation(edge_scores=np.random.default_rng(0).random(graph.num_edges),
                        predicted_class=int(node_model.predict(graph)[good_motif_node]),
                        method="r", target=good_motif_node,
                        context_edge_positions=ctx_edges)
        # only 3 candidate edges; fidelity must be computable
        v = fidelity_minus(node_model, [Instance(graph, good_motif_node)], [e], 0.5)
        assert np.isfinite(v)

    def test_averages_over_instances(self, graph_model, mini_mutag):
        gs = mini_mutag.graphs[:3]
        insts = [Instance(g) for g in gs]
        exps = [Explanation(edge_scores=np.random.default_rng(i).random(g.num_edges),
                            predicted_class=int(graph_model.predict(g)[0]), method="r")
                for i, g in enumerate(gs)]
        mean_v = fidelity_minus(graph_model, insts, exps, 0.5)
        singles = [fidelity_minus(graph_model, [i], [e], 0.5)
                   for i, e in zip(insts, exps)]
        assert mean_v == pytest.approx(np.mean(singles))
