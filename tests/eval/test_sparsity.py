"""Sparsity-controlled subgraph construction."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval import explanatory_subgraph, select_explanatory_edges, unexplanatory_subgraph
from repro.graph import Graph


@pytest.fixture
def graph():
    return Graph(edge_index=np.array([[0, 1, 2, 3, 0], [1, 2, 3, 0, 2]]),
                 x=np.ones((4, 2)))


@pytest.fixture
def scores():
    return np.array([0.9, 0.1, 0.5, 0.7, 0.3])


class TestSelection:
    def test_keeps_top_fraction(self, scores):
        chosen = select_explanatory_edges(scores, 0.6)
        assert chosen.tolist() == [0, 3]  # top 40% of 5 = 2 edges

    def test_zero_sparsity_keeps_all(self, scores):
        assert select_explanatory_edges(scores, 0.0).size == 5

    def test_high_sparsity_keeps_at_least_one(self, scores):
        assert select_explanatory_edges(scores, 0.99).size == 1

    def test_invalid_sparsity(self, scores):
        with pytest.raises(EvaluationError):
            select_explanatory_edges(scores, 1.0)
        with pytest.raises(EvaluationError):
            select_explanatory_edges(scores, -0.1)

    def test_candidate_restriction(self, scores):
        chosen = select_explanatory_edges(scores, 0.5, candidate_edges=np.array([1, 2, 4]))
        assert set(chosen.tolist()) <= {1, 2, 4}
        assert chosen.size == 2  # ceil-rounded half of 3

    def test_empty_candidates(self, scores):
        assert select_explanatory_edges(scores, 0.5,
                                        candidate_edges=np.array([], dtype=int)).size == 0

    def test_stable_tie_breaking(self):
        scores = np.zeros(4)
        chosen = select_explanatory_edges(scores, 0.5)
        assert chosen.tolist() == [0, 1]  # stable order on ties


class TestSubgraphs:
    def test_explanatory_keeps_chosen(self, graph, scores):
        sub = explanatory_subgraph(graph, scores, 0.6)
        kept = set(zip(sub.src.tolist(), sub.dst.tolist()))
        assert kept == {(0, 1), (3, 0)}  # edges 0 and 3

    def test_unexplanatory_removes_chosen(self, graph, scores):
        sub = unexplanatory_subgraph(graph, scores, 0.6)
        assert sub.num_edges == 3
        removed = {(0, 1), (3, 0)}
        remaining = set(zip(sub.src.tolist(), sub.dst.tolist()))
        assert not (removed & remaining)

    def test_complementarity(self, graph, scores):
        s = 0.6
        keep = explanatory_subgraph(graph, scores, s).num_edges
        drop = unexplanatory_subgraph(graph, scores, s).num_edges
        assert keep + drop == graph.num_edges

    def test_candidates_outside_always_kept(self, graph, scores):
        # only edges {0,1} are candidates; edges 2,3,4 must survive both ways
        sub = explanatory_subgraph(graph, scores, 0.5, candidate_edges=np.array([0, 1]))
        pairs = set(zip(sub.src.tolist(), sub.dst.tolist()))
        assert {(2, 3), (3, 0), (0, 2)} <= pairs

    def test_nodes_preserved(self, graph, scores):
        sub = explanatory_subgraph(graph, scores, 0.8)
        assert sub.num_nodes == graph.num_nodes
