"""Experiment runners (one per paper artifact) on tiny configurations."""

import pytest

from repro.eval import (
    ExperimentConfig,
    Instance,
    build_instances,
    method_config,
    run_alpha_sensitivity,
    run_auc_experiment,
    run_explainer,
    run_fidelity_experiment,
    run_runtime_experiment,
    time_explainer,
)
from repro.eval.experiments import method_applicable


TINY = ExperimentConfig(scale=0.12, num_instances=2, effort=0.05,
                        sparsities=(0.5, 0.8))


class TestMethodConfig:
    def test_effort_one_is_paper_settings(self):
        assert method_config("gnnexplainer", 1.0)["epochs"] == 500
        assert method_config("pgexplainer", 1.0)["lr"] == 3e-3
        assert method_config("graphmask", 1.0)["epochs"] == 200
        assert method_config("revelio", 1.0)["epochs"] == 500

    def test_effort_scales_with_floor(self):
        assert method_config("gnnexplainer", 0.01)["epochs"] == 25

    def test_alpha_forwarded(self):
        assert method_config("revelio", 1.0, alpha=0.7)["alpha"] == 0.7

    def test_unknown_method(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            method_config("lime", 1.0)


class TestApplicability:
    def test_gat_na_on_synthetics(self):
        assert not method_applicable("revelio", "ba_shapes", "gat")
        assert method_applicable("revelio", "cora", "gat")

    def test_gnn_lrp_not_on_gat(self):
        assert not method_applicable("gnn_lrp", "cora", "gat")

    def test_subgraphx_restricted(self):
        assert not method_applicable("subgraphx", "cora", "gcn")
        assert method_applicable("subgraphx", "mutag", "gcn")


class TestInstanceBuilding:
    def test_node_instances(self):
        from repro.datasets import tree_cycles

        ds = tree_cycles(scale=0.12, seed=0)
        instances = build_instances(ds, 5, seed=0)
        assert len(instances) == 5
        assert all(i.target is not None for i in instances)

    def test_graph_instances(self):
        from repro.datasets import mutag

        ds = mutag(scale=0.12, seed=0)
        instances = build_instances(ds, 4, seed=0)
        assert len(instances) == 4
        assert all(i.target is None for i in instances)

    def test_correct_only_filters(self, node_model, mini_ba_shapes):
        instances = build_instances(mini_ba_shapes, 3, seed=0, motif_only=True,
                                    correct_only=True, model=node_model)
        pred = node_model.predict(mini_ba_shapes.graph)
        for inst in instances:
            node = inst.target.node_id
            assert pred[node] == mini_ba_shapes.graph.y[node]

    def test_correct_only_requires_model(self, mini_ba_shapes):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            build_instances(mini_ba_shapes, 3, correct_only=True)


class TestRunners:
    def test_fidelity_runner(self):
        result = run_fidelity_experiment("tree_cycles", "gcn",
                                         ("gradcam", "revelio"), mode="factual",
                                         config=TINY)
        assert set(result["curves"]) == {"gradcam", "revelio"}
        assert set(result["curves"]["revelio"]) == {0.5, 0.8}
        assert len(result["rows"]) == 3  # header + 2 methods

    def test_fidelity_counterfactual(self):
        result = run_fidelity_experiment("tree_cycles", "gcn", ("revelio",),
                                         mode="counterfactual", config=TINY)
        assert "revelio" in result["curves"]

    def test_auc_runner(self):
        result = run_auc_experiment("tree_cycles", "gcn", ("gradcam", "revelio"),
                                    config=TINY)
        for method, auc in result["auc"].items():
            assert 0.0 <= auc <= 1.0

    def test_runtime_runner(self):
        result = run_runtime_experiment("tree_cycles", "gcn",
                                        ("gradcam", "gnnexplainer"), config=TINY)
        assert result["mean_seconds"]["gradcam"] < result["mean_seconds"]["gnnexplainer"]

    def test_alpha_runner(self):
        result = run_alpha_sensitivity("tree_cycles", "gcn", alphas=(0.0, 0.5),
                                       config=TINY)
        assert set(result["curves"]) == {0.0, 0.5}

    def test_inapplicable_methods_skipped(self):
        result = run_fidelity_experiment("tree_cycles", "gcn",
                                         ("subgraphx", "gradcam"), config=TINY)
        assert "subgraphx" in result["curves"]  # tree_cycles is allowed
        result2 = run_fidelity_experiment("tree_cycles", "gin",
                                          ("gradcam",), config=TINY)
        assert "gradcam" in result2["curves"]

    def test_run_explainer_group_method(self, node_model, mini_ba_shapes,
                                        good_motif_node):
        instances = [Instance(mini_ba_shapes.graph, good_motif_node)]
        result = run_explainer("pgexplainer", node_model, instances,
                               effort=0.02, seed=0)
        assert len(result.explanations) == 1

    def test_timing_result_stats(self, node_model, mini_ba_shapes, good_motif_node):
        from repro.explain import make_explainer

        expl = make_explainer("gradcam", node_model)
        result = time_explainer(expl, [Instance(mini_ba_shapes.graph, good_motif_node)])
        assert result.mean_seconds > 0
        assert result.total_seconds >= result.mean_seconds
        assert "gradcam" in repr(result)
