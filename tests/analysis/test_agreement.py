"""Method-agreement metrics."""

import numpy as np
import pytest

from repro.analysis import (
    agreement_matrix,
    edge_rank_correlation,
    top_edge_overlap,
    top_flow_overlap,
)
from repro.errors import EvaluationError
from repro.explain.base import Explanation
from repro.flows import enumerate_flows


def make(scores, ctx=None, method="m", flow_scores=None, flow_index=None):
    return Explanation(edge_scores=np.asarray(scores, dtype=float),
                       predicted_class=0, method=method,
                       context_edge_positions=ctx,
                       flow_scores=flow_scores, flow_index=flow_index)


class TestRankCorrelation:
    def test_identical_is_one(self):
        a = make([0.1, 0.5, 0.9, 0.3])
        assert edge_rank_correlation(a, a) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        a = make([1, 2, 3, 4])
        b = make([4, 3, 2, 1])
        assert edge_rank_correlation(a, b) == pytest.approx(-1.0)

    def test_kendall_variant(self):
        a = make([1, 2, 3, 4])
        b = make([1, 2, 4, 3])
        assert 0 < edge_rank_correlation(a, b, method="kendall") < 1

    def test_constant_scores_zero(self):
        a = make([1, 1, 1, 1])
        b = make([1, 2, 3, 4])
        assert edge_rank_correlation(a, b) == 0.0

    def test_context_intersection(self):
        a = make([1, 2, 3, 4, 0], ctx=np.array([0, 1, 2, 3]))
        b = make([4, 3, 2, 1, 0], ctx=np.array([1, 2, 3, 4]))
        corr = edge_rank_correlation(a, b)  # compared over {1,2,3}
        assert corr == pytest.approx(-1.0)

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            edge_rank_correlation(make([1, 2]), make([1, 2, 3]))

    def test_unknown_method(self):
        with pytest.raises(EvaluationError):
            edge_rank_correlation(make([1, 2, 3]), make([3, 2, 1]), method="pearson")


class TestOverlap:
    def test_full_overlap(self):
        a = make([0.9, 0.8, 0.1, 0.0])
        assert top_edge_overlap(a, a, k=2) == 1.0

    def test_disjoint(self):
        a = make([1.0, 0.9, 0.0, 0.0])
        b = make([0.0, 0.0, 1.0, 0.9])
        assert top_edge_overlap(a, b, k=2) == 0.0

    def test_partial(self):
        a = make([1.0, 0.9, 0.0, 0.0])
        b = make([1.0, 0.0, 0.9, 0.0])
        assert top_edge_overlap(a, b, k=2) == pytest.approx(1 / 3)

    def test_flow_overlap(self, triangle_graph):
        fi = enumerate_flows(triangle_graph, 2, target=1)
        scores = np.linspace(0, 1, fi.num_flows)
        a = make(np.zeros(4), flow_scores=scores, flow_index=fi)
        b = make(np.zeros(4), flow_scores=scores[::-1].copy(), flow_index=fi)
        assert top_flow_overlap(a, a, k=3) == 1.0
        assert 0.0 <= top_flow_overlap(a, b, k=3) <= 1.0


class TestMatrix:
    def test_symmetric_unit_diagonal(self):
        exps = [make([1, 2, 3, 4], method="a"),
                make([4, 3, 2, 1], method="b"),
                make([1, 3, 2, 4], method="c")]
        matrix, names = agreement_matrix(exps, k=2)
        assert names == ["a", "b", "c"]
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_needs_two(self):
        with pytest.raises(EvaluationError):
            agreement_matrix([make([1, 2])])
