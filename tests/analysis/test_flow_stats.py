"""Flow-structure statistics."""

import numpy as np
import pytest

from repro.analysis import (
    explanation_concentration,
    flow_statistics,
    flows_per_edge_profile,
    mass_through_nodes,
)
from repro.errors import EvaluationError
from repro.explain.base import Explanation
from repro.flows import enumerate_flows
from repro.graph import Graph


@pytest.fixture
def star_flows():
    # star into node 0: several length-2 flows share the final edges
    g = Graph(edge_index=np.array([[1, 2, 3, 1], [0, 0, 0, 2]]), x=np.ones((4, 2)))
    return g, enumerate_flows(g, 2, target=0)


class TestFlowStatistics:
    def test_summary_fields(self, star_flows):
        _, fi = star_flows
        stats = flow_statistics(fi)
        assert stats.num_flows == fi.num_flows
        assert stats.num_layers == 2
        assert stats.flows_per_layer_edge_max >= 1
        assert 0.0 <= stats.self_loop_flow_fraction <= 1.0

    def test_ambiguity_detected(self, star_flows):
        _, fi = star_flows
        stats = flow_statistics(fi)
        # edge 1->0 at layer 2 carries multiple flows (1->1->0 via loop etc.)
        assert stats.ambiguous_edge_fraction > 0.0

    def test_deeper_layers_carry_more_flows(self, node_model, mini_ba_shapes,
                                            good_motif_node):
        """The paper's §I claim for node classification."""
        from repro.explain import RandomExplainer

        ctx = RandomExplainer(node_model).node_context(mini_ba_shapes.graph,
                                                       good_motif_node)
        fi = enumerate_flows(ctx.subgraph, 3, target=ctx.local_target)
        profile = flows_per_edge_profile(fi)
        assert profile.shape == (3,)
        assert profile[-1] >= profile[0]  # deeper layer edges more loaded

    def test_repr(self, star_flows):
        _, fi = star_flows
        assert "|F|=" in repr(flow_statistics(fi))


class TestMass:
    def test_mass_through_all_nodes_is_one(self, star_flows):
        g, fi = star_flows
        e = Explanation(edge_scores=np.zeros(g.num_edges), predicted_class=0,
                        method="t", flow_scores=np.ones(fi.num_flows), flow_index=fi)
        assert mass_through_nodes(e, set(range(g.num_nodes))) == pytest.approx(1.0)

    def test_mass_through_disjoint_nodes_zero(self, star_flows):
        g, fi = star_flows
        e = Explanation(edge_scores=np.zeros(g.num_edges), predicted_class=0,
                        method="t", flow_scores=np.ones(fi.num_flows), flow_index=fi)
        assert mass_through_nodes(e, {99}) == 0.0

    def test_negative_scores_ignored(self, star_flows):
        g, fi = star_flows
        scores = -np.ones(fi.num_flows)
        e = Explanation(edge_scores=np.zeros(g.num_edges), predicted_class=0,
                        method="t", flow_scores=scores, flow_index=fi)
        assert mass_through_nodes(e, {0}) == 0.0

    def test_requires_flow_scores(self):
        e = Explanation(edge_scores=np.zeros(3), predicted_class=0, method="t")
        with pytest.raises(EvaluationError):
            mass_through_nodes(e, {0})

    def test_context_translation(self, star_flows):
        g, fi = star_flows
        ids = np.array([10, 11, 12, 13])
        e = Explanation(edge_scores=np.zeros(g.num_edges), predicted_class=0,
                        method="t", flow_scores=np.ones(fi.num_flows),
                        flow_index=fi, context_node_ids=ids)
        assert mass_through_nodes(e, {10}) == pytest.approx(1.0)  # target is 0 -> 10


class TestConcentration:
    def test_point_mass(self):
        e = Explanation(edge_scores=np.array([1.0, 0, 0, 0]), predicted_class=0,
                        method="t")
        assert explanation_concentration(e, k=1) == 1.0

    def test_uniform(self):
        e = Explanation(edge_scores=np.ones(10), predicted_class=0, method="t")
        assert explanation_concentration(e, k=5) == pytest.approx(0.5)

    def test_no_positive_mass(self):
        e = Explanation(edge_scores=-np.ones(4), predicted_class=0, method="t")
        with pytest.raises(EvaluationError):
            explanation_concentration(e)
