"""Stability analysis."""

import numpy as np
import pytest

from repro.analysis import perturbation_stability, seed_stability
from repro.core import Revelio
from repro.errors import EvaluationError
from repro.explain import GradCAM


class TestSeedStability:
    def test_deterministic_method_perfectly_stable(self, node_model, mini_ba_shapes,
                                                   good_motif_node):
        report = seed_stability(lambda seed: GradCAM(node_model, seed=seed),
                                mini_ba_shapes.graph, target=good_motif_node,
                                num_seeds=3)
        assert report.score_std == pytest.approx(0.0, abs=1e-12)
        assert report.mean_top_k_overlap == pytest.approx(1.0)

    def test_learned_method_reports_variance(self, node_model, mini_ba_shapes,
                                             good_motif_node):
        report = seed_stability(
            lambda seed: Revelio(node_model, epochs=20, seed=seed),
            mini_ba_shapes.graph, target=good_motif_node, num_seeds=3)
        assert report.num_runs == 3
        assert np.isfinite(report.mean_rank_correlation)
        assert 0.0 <= report.mean_top_k_overlap <= 1.0

    def test_needs_multiple_runs(self, node_model, mini_ba_shapes, good_motif_node):
        with pytest.raises(EvaluationError):
            seed_stability(lambda seed: GradCAM(node_model, seed=seed),
                           mini_ba_shapes.graph, target=good_motif_node, num_seeds=1)

    def test_repr(self, node_model, mini_ba_shapes, good_motif_node):
        report = seed_stability(lambda seed: GradCAM(node_model, seed=seed),
                                mini_ba_shapes.graph, target=good_motif_node,
                                num_seeds=2)
        assert "rank_corr" in repr(report)


class TestPerturbationStability:
    def test_runs_and_bounds(self, node_model, mini_ba_shapes, good_motif_node):
        explainer = GradCAM(node_model)
        report = perturbation_stability(explainer, mini_ba_shapes.graph,
                                        target=good_motif_node,
                                        num_perturbations=2, feature_noise=0.01)
        assert report.num_runs == 3  # original + 2 perturbed
        assert -1.0 <= report.mean_rank_correlation <= 1.0

    def test_zero_noise_fully_stable(self, node_model, mini_ba_shapes, good_motif_node):
        explainer = GradCAM(node_model)
        report = perturbation_stability(explainer, mini_ba_shapes.graph,
                                        target=good_motif_node,
                                        num_perturbations=2, feature_noise=0.0)
        assert report.mean_top_k_overlap == pytest.approx(1.0)

    def test_original_graph_untouched(self, node_model, mini_ba_shapes,
                                      good_motif_node):
        graph = mini_ba_shapes.graph
        before = graph.x.copy()
        perturbation_stability(GradCAM(node_model), graph, target=good_motif_node,
                               num_perturbations=2, feature_noise=0.5)
        assert np.array_equal(graph.x, before)
