"""ASCII curve rendering."""

import pytest

from repro.errors import EvaluationError
from repro.viz import render_curves, render_fidelity_result


@pytest.fixture
def curves():
    return {
        "revelio": {0.5: -0.05, 0.7: -0.03, 0.9: 0.15},
        "gradcam": {0.5: 0.20, 0.7: 0.08, 0.9: 0.16},
    }


class TestRenderCurves:
    def test_contains_markers_and_legend(self, curves):
        out = render_curves(curves)
        assert "o revelio" in out
        assert "x gradcam" in out
        grid_rows = [l for l in out.split("\n") if "|" in l]
        assert any("o" in row for row in grid_rows)
        assert any("x" in row for row in grid_rows)

    def test_axis_labels(self, curves):
        out = render_curves(curves)
        assert "0.50" in out
        assert "0.90" in out
        assert "(sparsity)" in out

    def test_zero_line_when_crossing(self, curves):
        assert "·" in render_curves(curves)

    def test_no_zero_line_when_all_positive(self):
        out = render_curves({"a": {0.0: 1.0, 1.0: 2.0}})
        assert "·" not in out

    def test_flat_curve_does_not_crash(self):
        out = render_curves({"flat": {0.0: 0.5, 1.0: 0.5}})
        assert "flat" in out

    def test_single_point(self):
        out = render_curves({"dot": {0.5: 0.1}})
        assert "dot" in out

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            render_curves({})

    def test_dimensions_respected(self, curves):
        out = render_curves(curves, width=30, height=8)
        plot_lines = [l for l in out.split("\n") if "|" in l]
        assert len(plot_lines) == 8
        assert all(len(l.split("|")[1]) == 30 for l in plot_lines)

    def test_many_methods_cycle_markers(self):
        curves = {f"m{i}": {0.0: float(i), 1.0: float(i)} for i in range(10)}
        out = render_curves(curves)
        assert "m9" in out


class TestRenderFidelityResult:
    def test_title_and_chart(self, curves):
        result = {"dataset": "mutag", "conv": "gin", "mode": "factual",
                  "curves": curves}
        out = render_fidelity_result(result)
        assert out.startswith("mutag / GIN (factual)")
        assert "revelio" in out

    def test_integrates_with_runner_output(self):
        from repro.eval import ExperimentConfig, run_fidelity_experiment

        result = run_fidelity_experiment(
            "tree_cycles", "gcn", ("gradcam",),
            config=ExperimentConfig(scale=0.12, num_instances=2, effort=0.02,
                                    sparsities=(0.5, 0.9)))
        out = render_fidelity_result(result)
        assert "tree_cycles" in out
