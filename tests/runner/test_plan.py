"""Job planning: stable ids, derived seeds, deterministic chunking."""

import pytest

from repro.errors import RunnerError
from repro.eval import ExperimentConfig
from repro.runner import (
    GROUP_FIT_METHODS,
    JobSpec,
    derive_seed,
    plan_experiment,
)

CFG = ExperimentConfig(scale=0.12, num_instances=8, effort=0.05,
                       sparsities=(0.5, 0.8), seed=0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a:b:c") == derive_seed(0, "a:b:c")

    def test_varies_with_job_and_base(self):
        seeds = {derive_seed(0, "a"), derive_seed(0, "b"), derive_seed(1, "a")}
        assert len(seeds) == 3

    def test_fits_numpy_seed_range(self):
        assert 0 <= derive_seed(12345, "fidelity:mutag:gin:factual:flowx:003") < 2**32


class TestJobSpec:
    def test_roundtrip(self):
        job = JobSpec(id="x", kind="sleep", payload={"seconds": 0.1},
                      seed=7, retries=2, timeout=1.5)
        back = JobSpec.from_dict(job.to_dict())
        assert back == job

    def test_roundtrip_through_json(self):
        import json

        job = JobSpec(id="x", kind="sleep", payload={"values": [1.0, 2.5]}, seed=7)
        back = JobSpec.from_dict(json.loads(json.dumps(job.to_dict())))
        assert back == job


class TestPlanExperiment:
    def test_plan_is_deterministic(self):
        a = plan_experiment("fidelity", "tree_cycles", "gcn",
                            ("gradcam", "revelio"), config=CFG)
        b = plan_experiment("fidelity", "tree_cycles", "gcn",
                            ("gradcam", "revelio"), config=CFG)
        assert [j.to_dict() for j in a.jobs] == [j.to_dict() for j in b.jobs]

    def test_ids_stable_and_unique(self):
        plan = plan_experiment("fidelity", "tree_cycles", "gcn",
                               ("gradcam", "revelio"), config=CFG)
        ids = [j.id for j in plan.jobs]
        assert len(set(ids)) == len(ids)
        assert ids[0] == "fidelity:tree_cycles:gcn:factual:gradcam:000"

    def test_chunks_cover_instances_exactly_once(self):
        plan = plan_experiment("fidelity", "tree_cycles", "gcn", ("gradcam",),
                               config=CFG, chunks=3)
        covered = sorted(i for j in plan.jobs for i in j.payload["instances"])
        assert covered == list(range(8))

    def test_group_fit_methods_single_chunk(self):
        plan = plan_experiment("fidelity", "tree_cycles", "gcn",
                               ("pgexplainer", "graphmask", "gradcam"), config=CFG)
        for method in GROUP_FIT_METHODS:
            jobs = plan.jobs_for_method(method)
            assert len(jobs) == 1
            assert jobs[0].payload["instances"] == list(range(8))
        assert len(plan.jobs_for_method("gradcam")) == 4

    def test_inapplicable_methods_dropped(self):
        plan = plan_experiment("fidelity", "tree_cycles", "gin",
                               ("gnn_lrp", "subgraphx", "gradcam"), config=CFG)
        assert "subgraphx" in plan.meta["methods"]  # tree_cycles allowed
        plan2 = plan_experiment("fidelity", "cora", "gcn",
                                ("subgraphx", "gradcam"), config=CFG)
        assert plan2.meta["methods"] == ["gradcam"]

    def test_effective_instances_chunked(self):
        plan = plan_experiment("auc", "tree_cycles", "gcn", ("gradcam",),
                               config=CFG, num_instances=5)
        covered = sorted(i for j in plan.jobs for i in j.payload["instances"])
        assert covered == list(range(5))
        # jobs still carry the requested count for instance-list rebuild
        assert plan.jobs[0].payload["num_instances"] == 8

    def test_unplannable_artifact(self):
        with pytest.raises(RunnerError):
            plan_experiment("table3", "tree_cycles", "gcn", ("gradcam",), config=CFG)

    def test_per_job_seeds_differ_across_chunks(self):
        plan = plan_experiment("fidelity", "tree_cycles", "gcn", ("revelio",),
                               config=CFG)
        seeds = [j.seed for j in plan.jobs]
        assert len(set(seeds)) == len(seeds)
