"""PERF snapshot/merge: worker counters fold truthfully into the parent."""

import multiprocessing as mp

import pytest

from repro.obs.counters import PerfCounters, PERF


class TestMerge:
    def test_merge_adds_counters_and_stages(self):
        parent = PerfCounters()
        parent.single_forwards = 5
        parent.stage_seconds["fit"] = 1.0

        worker = PerfCounters()
        worker.single_forwards = 3
        worker.batched_rows = 11
        worker.stage_seconds["fit"] = 0.5
        worker.stage_seconds["explain"] = 0.25

        parent.merge(worker.snapshot())
        assert parent.single_forwards == 8
        assert parent.batched_rows == 11
        assert parent.stage_seconds == {"fit": 1.5, "explain": 0.25}

    def test_merge_of_delta_roundtrip(self):
        # snapshot → work → delta → merge elsewhere == doing the work there
        a = PerfCounters()
        before = a.snapshot()
        a.single_forwards += 4
        with a.stage("x"):
            pass
        delta = PerfCounters.delta(before, a.snapshot())

        b = PerfCounters()
        b.single_forwards = 100
        b.merge(delta)
        assert b.single_forwards == 104
        assert "x" in b.stage_seconds

    def test_merge_empty_delta_noop(self):
        c = PerfCounters()
        c.single_forwards = 2
        c.merge({})
        assert c.single_forwards == 2
        assert c.stage_seconds == {}

    def test_concurrent_worker_deltas_fold_exactly(self):
        # Each "worker" produces its own delta (snapshot → work → delta, as
        # the pool protocol does) on a private counter set; merging all the
        # deltas into the parent must account for every unit of work and
        # every stage timer, regardless of interleaving.
        import threading

        parent = PerfCounters()
        parent.single_forwards = 1
        deltas = [None] * 8

        def work(i):
            local = PerfCounters()
            before = local.snapshot()
            for _ in range(50):
                local.single_forwards += 1
                local.batched_rows += i
                with local.stage("explain"):
                    pass
                with local.stage(f"stage_{i % 2}"):
                    pass
            deltas[i] = PerfCounters.delta(before, local.snapshot())

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for d in deltas:
            parent.merge(d)
        assert parent.single_forwards == 1 + 8 * 50
        assert parent.batched_rows == 50 * sum(range(8))
        assert set(parent.stage_seconds) == {"explain", "stage_0", "stage_1"}
        # 8 workers x 50 timed blocks each landed in the shared stage.
        assert parent.stage_seconds["explain"] == pytest.approx(
            sum(d["stage_seconds"]["explain"] for d in deltas))


@pytest.mark.skipif("fork" not in mp.get_all_start_methods(),
                    reason="requires fork start method")
class TestPoolMergesWorkerCounters:
    def test_worker_forwards_counted_in_parent(self):
        from repro.runner import JobSpec, register_executor, run_jobs

        def do_forwards(payload, seed):
            PERF.single_forwards += payload["count"]
            return {}

        register_executor("perf_bump", do_forwards)
        before = PERF.snapshot()
        jobs = [JobSpec(id=f"p{i}", kind="perf_bump", payload={"count": 10})
                for i in range(3)]
        run_jobs(jobs, workers=2)
        after = PERF.snapshot()
        assert after["single_forwards"] - before["single_forwards"] == 30
