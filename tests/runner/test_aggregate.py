"""Aggregation: serial-structure parity and failure-path behavior."""

from repro.runner import ExperimentPlan, JobSpec, aggregate_experiment


def _fidelity_plan():
    meta = {"dataset": "tree_cycles", "conv": "gcn", "mode": "factual",
            "sparsities": [0.5, 0.8], "num_instances": 4,
            "methods": ["gradcam", "revelio"]}
    jobs = []
    for method in meta["methods"]:
        for ci in range(2):
            jobs.append(JobSpec(
                id=f"fidelity:tree_cycles:gcn:factual:{method}:{ci:03d}",
                kind="fidelity_chunk",
                payload={"method": method, "chunk": ci,
                         "instances": [2 * ci, 2 * ci + 1]}))
    return ExperimentPlan(artifact="fidelity", meta=meta, jobs=jobs)


def _ok(job_id, result):
    return {"id": job_id, "status": "ok", "attempt": 1, "seconds": 0.1,
            "result": result}


class TestAggregateFidelity:
    def test_weighted_mean_over_chunks(self):
        plan = _fidelity_plan()
        records = {
            plan.jobs[0].id: _ok(plan.jobs[0].id,
                                 {"method": "gradcam", "n": 2, "values": [0.1, 0.2]}),
            plan.jobs[1].id: _ok(plan.jobs[1].id,
                                 {"method": "gradcam", "n": 2, "values": [0.3, 0.4]}),
            plan.jobs[2].id: _ok(plan.jobs[2].id,
                                 {"method": "revelio", "n": 2, "values": [0.5, 0.5]}),
            plan.jobs[3].id: _ok(plan.jobs[3].id,
                                 {"method": "revelio", "n": 2, "values": [0.5, 0.5]}),
        }
        out = aggregate_experiment(plan, records)
        assert abs(out["curves"]["gradcam"][0.5] - 0.2) < 1e-12
        assert abs(out["curves"]["gradcam"][0.8] - 0.3) < 1e-12
        assert out["rows"][0].startswith("method")
        assert len(out["rows"]) == 3
        assert out["failures"] == {}
        assert out["jobs"] == {"total": 4, "ok": 4, "failed": 0}

    def test_partial_failure_aggregates_survivors(self):
        plan = _fidelity_plan()
        records = {
            plan.jobs[0].id: _ok(plan.jobs[0].id,
                                 {"method": "gradcam", "n": 2, "values": [0.1, 0.2]}),
            plan.jobs[1].id: {"id": plan.jobs[1].id, "status": "failed",
                              "attempt": 2, "seconds": 0.1,
                              "error": {"type": "ValueError", "message": "nan"}},
            plan.jobs[2].id: _ok(plan.jobs[2].id,
                                 {"method": "revelio", "n": 2, "values": [0.5, 0.6]}),
            plan.jobs[3].id: _ok(plan.jobs[3].id,
                                 {"method": "revelio", "n": 2, "values": [0.5, 0.6]}),
        }
        out = aggregate_experiment(plan, records)
        # gradcam falls back to its surviving chunk's mean
        assert abs(out["curves"]["gradcam"][0.5] - 0.1) < 1e-12
        assert out["failures"]["gradcam"][0]["error"]["type"] == "ValueError"
        assert out["jobs"]["failed"] == 1

    def test_method_with_all_chunks_failed_omitted(self):
        plan = _fidelity_plan()
        records = {
            plan.jobs[2].id: _ok(plan.jobs[2].id,
                                 {"method": "revelio", "n": 2, "values": [0.5, 0.6]}),
            plan.jobs[3].id: _ok(plan.jobs[3].id,
                                 {"method": "revelio", "n": 2, "values": [0.5, 0.6]}),
        }
        out = aggregate_experiment(plan, records)
        assert "gradcam" not in out["curves"]
        assert "revelio" in out["curves"]
        # missing records (never ran — e.g. killed before dispatch) reported
        assert all(f["error"]["type"] == "Missing"
                   for f in out["failures"]["gradcam"])

    def test_row_format_matches_serial_runner(self):
        plan = _fidelity_plan()
        records = {j.id: _ok(j.id, {"method": j.payload["method"], "n": 2,
                                    "values": [0.1234, -0.5678]})
                   for j in plan.jobs}
        out = aggregate_experiment(plan, records)
        assert out["rows"][0] == "method         s=0.5  s=0.8"
        assert out["rows"][1] == "gradcam        +0.123  -0.568"


class TestAggregateAucRuntime:
    def test_auc_mean_in_instance_order(self):
        meta = {"dataset": "tree_cycles", "conv": "gcn", "mode": "factual",
                "num_instances": 4, "methods": ["gradcam"]}
        jobs = [JobSpec(id=f"auc:x:{ci}", kind="auc_chunk",
                        payload={"method": "gradcam", "chunk": ci})
                for ci in range(2)]
        plan = ExperimentPlan(artifact="auc", meta=meta, jobs=jobs)
        records = {
            jobs[0].id: _ok(jobs[0].id, {"method": "gradcam", "n": 2,
                                         "values": [1.0, 0.5]}),
            jobs[1].id: _ok(jobs[1].id, {"method": "gradcam", "n": 2,
                                         "values": [0.5]}),  # one degenerate skip
        }
        out = aggregate_experiment(plan, records)
        assert abs(out["auc"]["gradcam"] - (1.0 + 0.5 + 0.5) / 3) < 1e-12
        assert out["num_instances"] == 4

    def test_runtime_details(self):
        meta = {"dataset": "tree_cycles", "conv": "gcn",
                "num_instances": 4, "methods": ["pgexplainer"]}
        jobs = [JobSpec(id="rt:0", kind="runtime_chunk",
                        payload={"method": "pgexplainer", "chunk": 0})]
        plan = ExperimentPlan(artifact="runtime", meta=meta, jobs=jobs)
        records = {"rt:0": _ok("rt:0", {"method": "pgexplainer", "n": 2,
                                        "per_instance": [0.2, 0.4],
                                        "total_seconds": 0.65,
                                        "train_seconds": 1.5})}
        out = aggregate_experiment(plan, records)
        assert abs(out["mean_seconds"]["pgexplainer"] - 0.3) < 1e-12
        assert out["details"]["pgexplainer"]["train_seconds"] == 1.5
        assert "(train 1.5)" in out["rows"][0]
