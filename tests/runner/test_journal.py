"""JSONL journal: append/load, last-wins, torn-write tolerance."""

import json

from repro.runner import Journal, load_journal


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            j.append({"id": "a", "status": "ok", "result": {"x": 1.5}})
            j.append({"id": "b", "status": "failed",
                      "error": {"type": "ValueError", "message": "boom"}})
        records = load_journal(path)
        assert records["a"]["result"] == {"x": 1.5}
        assert records["b"]["error"]["type"] == "ValueError"

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            j.append({"id": "a", "status": "failed", "attempt": 1})
            j.append({"id": "a", "status": "ok", "attempt": 2})
        assert load_journal(path)["a"]["status"] == "ok"

    def test_truncated_tail_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            j.append({"id": "a", "status": "ok"})
        with open(path, "a") as fh:
            fh.write('{"id": "b", "status": "o')  # torn mid-write
        records = load_journal(path)
        assert set(records) == {"a"}

    def test_missing_file_empty(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") == {}

    def test_append_mode_preserves_history(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            j.append({"id": "a", "status": "ok"})
        with Journal(path) as j:
            j.append({"id": "b", "status": "ok"})
        assert set(load_journal(path)) == {"a", "b"}

    def test_floats_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        value = 0.1 + 0.2  # not exactly representable in decimal
        with Journal(path) as j:
            j.append({"id": "a", "status": "ok", "result": {"v": value}})
        assert load_journal(path)["a"]["result"]["v"] == value

    def test_append_after_torn_tail_starts_fresh_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            j.append({"id": "a", "status": "ok"})
            j.append({"id": "b", "status": "ok"})
        torn = path.read_text().splitlines()
        path.write_text(torn[0] + "\n" + torn[1][:10])  # kill mid-write of "b"
        with Journal(path) as j:
            j.append({"id": "c", "status": "ok"})
        records = load_journal(path)
        assert set(records) == {"a", "c"}  # "c" not glued onto the torn "b"

    def test_garbage_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json at all\n'
                        + json.dumps({"id": "a", "status": "ok"}) + "\n"
                        + json.dumps(["a", "list"]) + "\n")
        assert set(load_journal(path)) == {"a"}
