"""End-to-end: sharded experiments match across worker counts and resume.

Pins the subsystem's central guarantee: for a fixed seed, aggregated
fidelity rows are byte-identical whether the grid runs inline
(``jobs=1``), across 4 workers, or across 4 workers after being killed
mid-run and finished with ``--resume``.
"""

import multiprocessing as mp

import pytest

from repro.eval import ExecutionConfig, ExperimentConfig
from repro.eval.experiments import (
    run_auc_experiment,
    run_fidelity_experiment,
    run_runtime_experiment,
)
from repro.runner import load_journal

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")

CFG = ExperimentConfig(scale=0.12, num_instances=4, effort=0.05,
                       sparsities=(0.5, 0.8), seed=0)
METHODS = ("gradcam", "revelio")


def _fidelity(jobs, resume):
    execution = ExecutionConfig(jobs=jobs, resume=resume)
    return run_fidelity_experiment("tree_cycles", "gcn", METHODS,
                                   config=CFG, execution=execution)


@needs_fork
class TestWorkerCountInvariance:
    def test_rows_byte_identical_and_resume_after_kill(self, tmp_path):
        inline = _fidelity(1, str(tmp_path / "inline.jsonl"))
        parallel = _fidelity(4, str(tmp_path / "par.jsonl"))
        assert inline["rows"] == parallel["rows"]
        assert inline["curves"] == parallel["curves"]
        assert parallel["jobs"]["failed"] == 0

        # simulate a mid-run kill: keep the first 3 journaled jobs plus a
        # torn partial line (what fsync-per-line leaves behind), then resume
        lines = (tmp_path / "par.jsonl").read_text().splitlines()
        assert len(lines) == 8  # 2 methods x 4 chunks
        killed = tmp_path / "killed.jsonl"
        killed.write_text("\n".join(lines[:3]) + "\n" + lines[3][:20])
        resumed = _fidelity(4, str(killed))
        assert resumed["rows"] == inline["rows"]
        assert resumed["curves"] == inline["curves"]

        # the resumed run only re-ran the missing jobs: journal now holds
        # 3 original + 5 fresh records, one per job id
        journal = load_journal(killed)
        assert len(journal) == 8
        assert all(r["status"] == "ok" for r in journal.values())


class TestInlineJobsPath:
    def test_fidelity_repeatable_without_journal(self):
        a = _fidelity(1, None)
        b = _fidelity(1, None)
        assert a["rows"] == b["rows"]
        assert a["curves"] == b["curves"]
        assert set(a["curves"]) == set(METHODS)
        assert list(a["curves"]["revelio"]) == [0.5, 0.8]

    def test_auc_jobs_path(self):
        cfg = ExperimentConfig(scale=0.12, num_instances=3, effort=0.05, seed=0)
        out = run_auc_experiment("tree_cycles", "gcn", METHODS, config=cfg,
                                 execution=ExecutionConfig(jobs=1))
        for value in out["auc"].values():
            assert 0.0 <= value <= 1.0
        assert out["jobs"]["failed"] == 0

    def test_runtime_jobs_path(self):
        cfg = ExperimentConfig(scale=0.12, num_instances=2, effort=0.05, seed=0)
        out = run_runtime_experiment("tree_cycles", "gcn",
                                      ("gradcam", "gnnexplainer"), config=cfg,
                                      execution=ExecutionConfig(jobs=1))
        assert out["mean_seconds"]["gradcam"] < out["mean_seconds"]["gnnexplainer"]

    def test_failed_chunks_do_not_abort_artifact(self, monkeypatch):
        # sabotage one method's executor path: revelio chunks raise, the
        # artifact still completes with gradcam aggregated and failures listed
        import repro.runner.execute as execute_mod

        original = execute_mod.EXECUTORS["fidelity_chunk"]

        def sabotaged(payload, seed):
            if payload["method"] == "revelio":
                raise FloatingPointError("injected numerical blowup")
            return original(payload, seed)

        monkeypatch.setitem(execute_mod.EXECUTORS, "fidelity_chunk", sabotaged)
        out = _fidelity(1, None)
        assert "gradcam" in out["curves"]
        assert "revelio" not in out["curves"]
        errors = {f["error"]["type"] for f in out["failures"]["revelio"]}
        assert errors == {"FloatingPointError"}
        assert out["jobs"]["failed"] == 4
