"""Pool failure paths: raising, hanging and hard-crashing jobs; resume.

The executors are registered at import time, so forked workers inherit
them. Pool tests that need real subprocesses are skipped on platforms
without the ``fork`` start method; the inline (``workers=1``) tests run
everywhere.
"""

import multiprocessing as mp
import os
import time

import pytest

from repro.obs.counters import PERF
from repro.runner import (
    JobSpec,
    load_journal,
    register_executor,
    run_jobs,
)

HAS_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")


def _touch_and_run(payload, seed):
    """Append one line per invocation to a counter file, then act."""
    if payload.get("counter"):
        with open(payload["counter"], "a") as fh:
            fh.write(f"{payload.get('tag', '?')}\n")
    action = payload.get("action", "ok")
    if action == "raise":
        raise ValueError("injected failure")
    if action == "hang":
        time.sleep(60)
    if action == "exit":
        os._exit(23)  # simulates a segfault/OOM kill: no exception, no cleanup
    if action in ("flaky", "crash_once"):
        # fail until the attempt-counter file has enough lines
        with open(payload["counter"]) as fh:
            attempts = sum(1 for _ in fh)
        if attempts < payload.get("succeed_on", 2):
            if action == "crash_once":
                os._exit(23)
            raise RuntimeError(f"flaky (attempt {attempts})")
    return {"tag": payload.get("tag"), "seed": seed}


register_executor("faulty", _touch_and_run)


def _job(tag, action="ok", counter=None, **kw):
    return JobSpec(id=tag, kind="faulty",
                   payload={"tag": tag, "action": action,
                            "counter": str(counter) if counter else None}, **kw)


class TestInline:
    def test_all_ok(self):
        records = run_jobs([_job("a"), _job("b")], workers=1)
        assert all(r["status"] == "ok" for r in records.values())
        assert records["a"]["result"]["tag"] == "a"

    def test_raising_job_recorded_not_fatal(self):
        records = run_jobs([_job("bad", "raise"), _job("good")],
                           workers=1, retries=0)
        assert records["bad"]["status"] == "failed"
        assert records["bad"]["error"]["type"] == "ValueError"
        assert "injected failure" in records["bad"]["error"]["message"]
        assert "traceback" in records["bad"]["error"]
        assert records["good"]["status"] == "ok"

    def test_retry_until_success(self, tmp_path):
        counter = tmp_path / "c.txt"
        job = _job("flaky", "flaky", counter)
        job.payload["succeed_on"] = 2
        records = run_jobs([job], workers=1, retries=2, backoff=0.01)
        assert records["flaky"]["status"] == "ok"
        assert records["flaky"]["attempt"] == 2

    def test_retries_exhausted(self, tmp_path):
        records = run_jobs([_job("bad", "raise")], workers=1, retries=2,
                           backoff=0.01)
        assert records["bad"]["status"] == "failed"
        assert records["bad"]["attempt"] == 3

    def test_unknown_kind_fails_cleanly(self):
        records = run_jobs([JobSpec(id="u", kind="no_such_kind")], workers=1,
                           retries=0)
        assert records["u"]["status"] == "failed"
        assert records["u"]["error"]["type"] == "RunnerError"

    def test_journal_written(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_jobs([_job("a"), _job("bad", "raise")], workers=1, retries=0,
                 journal_path=path)
        journal = load_journal(path)
        assert journal["a"]["status"] == "ok"
        assert journal["bad"]["status"] == "failed"
        assert journal["bad"]["error"]["type"] == "ValueError"


@needs_fork
class TestPoolFaults:
    def test_raising_job_journaled_run_survives(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = run_jobs([_job("bad", "raise"), _job("g1"), _job("g2")],
                           workers=2, retries=0, journal_path=path)
        assert records["bad"]["status"] == "failed"
        assert records["bad"]["error"]["type"] == "ValueError"
        assert records["g1"]["status"] == records["g2"]["status"] == "ok"
        assert load_journal(path)["bad"]["error"]["type"] == "ValueError"

    def test_timeout_kills_and_continues(self, tmp_path):
        path = tmp_path / "j.jsonl"
        t0 = time.perf_counter()
        records = run_jobs([_job("hang", "hang", timeout=0.75),
                            _job("g1"), _job("g2")],
                           workers=2, retries=0, journal_path=path)
        assert time.perf_counter() - t0 < 30  # never waited the full sleep
        assert records["hang"]["status"] == "failed"
        assert records["hang"]["error"]["type"] == "JobTimeout"
        assert records["g1"]["status"] == records["g2"]["status"] == "ok"
        assert load_journal(path)["hang"]["error"]["type"] == "JobTimeout"

    def test_hard_crash_isolated_and_journaled(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = run_jobs([_job("boom", "exit"), _job("g1"), _job("g2"),
                            _job("g3")],
                           workers=2, retries=0, journal_path=path)
        assert records["boom"]["status"] == "failed"
        assert records["boom"]["error"]["type"] == "WorkerCrashed"
        assert "23" in records["boom"]["error"]["message"]
        for tag in ("g1", "g2", "g3"):
            assert records[tag]["status"] == "ok"
        assert load_journal(path)["boom"]["error"]["type"] == "WorkerCrashed"

    def test_crash_retry_can_succeed(self, tmp_path):
        # hard-exits on the first attempt, succeeds on the respawned
        # worker's retry (attempt 1 writes one counter line then exits;
        # attempt 2 sees the line and returns)
        counter = tmp_path / "c.txt"
        job = _job("phoenix", "crash_once", counter)
        job.payload["succeed_on"] = 2
        records = run_jobs([job], workers=2, retries=1, backoff=0.01)
        assert records["phoenix"]["status"] == "ok"
        assert records["phoenix"]["attempt"] == 2

    def test_more_jobs_than_workers(self):
        jobs = [_job(f"j{i}") for i in range(7)]
        records = run_jobs(jobs, workers=3)
        assert len(records) == 7
        assert all(r["status"] == "ok" for r in records.values())

    def test_per_job_seed_delivered(self):
        job = _job("seeded")
        job.seed = 424242
        records = run_jobs([job], workers=2)
        assert records["seeded"]["result"]["seed"] == 424242


class TestResume:
    def test_resume_skips_ok_reruns_failures(self, tmp_path):
        counter = tmp_path / "c.txt"
        path = tmp_path / "j.jsonl"
        jobs = [_job("a", counter=counter), _job("bad", "raise", counter),
                _job("b", counter=counter)]
        first = run_jobs(jobs, workers=1, retries=0, journal_path=path)
        assert first["bad"]["status"] == "failed"
        assert counter.read_text().splitlines() == ["a", "bad", "b"]

        # second pass: only the failure re-runs (now succeeding)
        jobs[1].payload["action"] = "ok"
        second = run_jobs(jobs, workers=1, retries=0, journal_path=path,
                          resume=True)
        assert counter.read_text().splitlines() == ["a", "bad", "b", "bad"]
        assert second["a"] == first["a"]  # journaled record returned verbatim
        assert second["bad"]["status"] == "ok"

    def test_resume_with_missing_journal_runs_all(self, tmp_path):
        counter = tmp_path / "c.txt"
        records = run_jobs([_job("a", counter=counter)], workers=1,
                           journal_path=tmp_path / "new.jsonl", resume=True)
        assert records["a"]["status"] == "ok"
        assert counter.read_text().splitlines() == ["a"]

    def test_resumed_records_not_perf_merged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_jobs([_job("a")], workers=1, journal_path=path)
        before = PERF.snapshot()
        run_jobs([_job("a")], workers=1, journal_path=path, resume=True)
        after = PERF.snapshot()
        assert after["single_forwards"] == before["single_forwards"]
