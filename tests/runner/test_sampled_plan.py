"""plan_sampled_explain: typed-target sharding, JSON codec, executor."""

import json
import warnings

import pytest

from repro.errors import RunnerError
from repro.explain import ExplainTarget
from repro.runner import plan_sampled_explain
from repro.runner.execute import execute_job
from repro.runner.plan import TARGET_MARKER, JobSpec


class TestPlanner:
    def test_shards_and_promotes_targets(self):
        plan = plan_sampled_explain("cora", "gcn", "gradcam",
                                    [0, ExplainTarget.node(4),
                                     ExplainTarget.link(1, 2), 9, 11],
                                    scale=0.2, chunk_size=2)
        assert plan.artifact == "sampled_explain"
        assert [j.id for j in plan.jobs] == [
            f"sampled:cora:gcn:gradcam:factual:{i:03d}" for i in range(3)]
        flat = [t for j in plan.jobs for t in j.payload["targets"]]
        assert flat == [ExplainTarget.node(0), ExplainTarget.node(4),
                        ExplainTarget.link(1, 2), ExplainTarget.node(9),
                        ExplainTarget.node(11)]
        assert plan.meta["num_targets"] == 5
        assert all(j.kind == "sampled_explain_chunk" for j in plan.jobs)

    def test_seeds_are_stable_and_distinct(self):
        a = plan_sampled_explain("cora", "gcn", "gradcam", list(range(6)),
                                 scale=0.2, chunk_size=2)
        b = plan_sampled_explain("cora", "gcn", "gradcam", list(range(6)),
                                 scale=0.2, chunk_size=2)
        assert [j.seed for j in a.jobs] == [j.seed for j in b.jobs]
        assert len({j.seed for j in a.jobs}) == len(a.jobs)

    def test_validation(self):
        with pytest.raises(RunnerError, match="at least one target"):
            plan_sampled_explain("cora", "gcn", "gradcam", [])
        with pytest.raises(RunnerError, match="chunk_size"):
            plan_sampled_explain("cora", "gcn", "gradcam", [0], chunk_size=0)
        with pytest.raises(RunnerError, match="node or link"):
            plan_sampled_explain("cora", "gcn", "gradcam",
                                 [ExplainTarget.graph(0)])


class TestTargetCodec:
    def test_jobspec_json_round_trip(self):
        plan = plan_sampled_explain("cora", "gcn", "gradcam",
                                    [3, ExplainTarget.link(1, 2)], scale=0.2)
        for job in plan.jobs:
            wire = json.loads(json.dumps(job.to_dict()))
            back = JobSpec.from_dict(wire)
            assert back.payload["targets"] == job.payload["targets"]
            assert all(isinstance(t, ExplainTarget)
                       for t in back.payload["targets"])
            assert back.seed == job.seed and back.id == job.id

    def test_marker_survives_nesting(self):
        spec = JobSpec(id="x", kind="k", payload={
            "deep": {"targets": [ExplainTarget.node(1)]},
            "plain": [1, 2, {"a": 3}],
        })
        back = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back.payload["deep"]["targets"] == [ExplainTarget.node(1)]
        assert back.payload["plain"] == [1, 2, {"a": 3}]
        assert TARGET_MARKER in json.dumps(spec.to_dict())


class TestExecutor:
    def test_chunk_executor_streams_targets(self):
        plan = plan_sampled_explain("cora", "gcn", "gradcam", [5, 9, 14],
                                    scale=0.12, chunk_size=8)
        (job,) = plan.jobs
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = execute_job(job)
        assert result["n"] == 3
        assert [r["target"] for r in result["rows"]] == [
            {"kind": "node", "ids": [5]}, {"kind": "node", "ids": [9]},
            {"kind": "node", "ids": [14]}]
        for row in result["rows"]:
            assert row["num_nodes"] >= 1
            assert len(row["top_edges"]) == len(row["top_scores"])
        # Determinism: the checksum is a pure function of the job.
        assert execute_job(job)["checksum"] == result["checksum"]
