"""Fig. 3: Fidelity− vs. sparsity for factual explanations.

One (dataset, conv) panel per configured combination; every applicable
method contributes a sparsity curve. Lower is better; the paper's headline
shape — flow-based methods (FlowX, Revelio) at or near the bottom on most
panels — should reproduce.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentConfig, run_fidelity_experiment
from repro.eval.experiments import FACTUAL_METHODS

from conftest import bench_convs, bench_datasets, write_result

DATASETS = bench_datasets(("ba_shapes", "tree_cycles", "mutag"))
CONVS = bench_convs(("gcn",))
PANELS = [(d, c) for d in DATASETS for c in CONVS
          if not (c == "gat" and d in ("ba_shapes", "tree_cycles", "ba_2motifs"))]


@pytest.mark.parametrize("dataset,conv", PANELS)
def test_fig3_panel(benchmark, dataset, conv):
    """Regenerate one Fig. 3 panel; benchmark runs the panel once."""
    def run():
        return run_fidelity_experiment(dataset, conv, FACTUAL_METHODS,
                                       mode="factual", config=ExperimentConfig())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(f"fig3_fidelity_minus_{dataset}_{conv}", result["rows"],
                 header=f"Fig. 3 — Fidelity− vs sparsity ({dataset}, {conv.upper()})")
