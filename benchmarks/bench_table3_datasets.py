"""Table III: dataset statistics and target-model accuracies.

Regenerates the metadata block and the GCN/GIN/GAT accuracy columns for
the configured datasets, then benchmarks a full-graph forward pass (the
unit the training loop repeats).
"""

from __future__ import annotations

from repro.eval import ExperimentConfig, run_dataset_table
from repro.nn.zoo import get_model

from conftest import bench_convs, bench_datasets, write_result

DATASETS = bench_datasets(("ba_shapes", "tree_cycles", "mutag", "ba_2motifs"))
CONVS = bench_convs(("gcn", "gin"))


def test_table3_rows(benchmark):
    """Regenerate Table III and benchmark one GCN forward pass."""
    result = run_dataset_table(dataset_names=DATASETS, convs=CONVS,
                               config=ExperimentConfig())
    write_result("table3_datasets", result["rows"],
                 header="Table III — dataset statistics and model accuracy")

    model, dataset, _ = get_model(DATASETS[0], CONVS[0])
    graph = dataset.graph if dataset.task == "node" else dataset.graphs[0]
    benchmark(lambda: model.predict_proba(graph))
