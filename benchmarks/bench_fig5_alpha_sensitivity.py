"""Fig. 5: sensitivity of Revelio to the sparsity constraint α.

Sweeps α over {0, 0.25, 0.5, 0.75, 1.0} on one node-classification and one
graph-classification dataset (the paper uses PubMed and MUTAG) and reports
the factual and counterfactual fidelity curves; larger α should help at
higher sparsity (smaller explanatory subgraphs).
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentConfig, run_alpha_sensitivity

from conftest import bench_datasets, full_grid, write_result

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)
DATASETS = bench_datasets(("pubmed", "mutag") if full_grid() else ("tree_cycles", "mutag"))


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", ["factual", "counterfactual"])
def test_fig5_alpha(benchmark, dataset, mode):
    """Regenerate one Fig. 5 panel (α sweep for one dataset/mode)."""
    def run():
        return run_alpha_sensitivity(dataset, "gcn", alphas=ALPHAS, mode=mode,
                                     config=ExperimentConfig())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metric = "Fidelity−" if mode == "factual" else "Fidelity+"
    write_result(f"fig5_alpha_{dataset}_{mode}", result["rows"],
                 header=f"Fig. 5 — {metric} vs sparsity for α sweep ({dataset}, GCN)")
