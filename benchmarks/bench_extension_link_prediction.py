"""Extension bench: flow explanations for link prediction.

Trains a link predictor on a two-community interaction graph, explains the
strongest predicted missing links with LinkRevelio, and measures whether
the factual explanations are community-consistent (flow mass inside the
endpoints' community) and whether counterfactual removals actually lower
the link probability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import mass_through_nodes
from repro.core import LinkRevelio
from repro.eval.sparsity import select_explanatory_edges
from repro.graph import Graph, sbm_edges
from repro.nn import LinkPredictor, sample_negative_edges, train_link_predictor

from conftest import write_result


def test_link_prediction_extension(benchmark):
    """Train, recommend, explain, verify — the full link pipeline."""
    rng = np.random.default_rng(0)
    edges = sbm_edges([25, 25], 0.3, 0.02, rng=rng)
    communities = np.array([0] * 25 + [1] * 25)
    x = rng.normal(size=(50, 8)) + communities[:, None] * 1.5
    graph = Graph(edge_index=edges, x=x, y=communities)

    model = LinkPredictor("gcn", 8, 16, rng=0)
    result = train_link_predictor(model, graph, epochs=80, rng=0)

    def run():
        rows = [f"link predictor: {result}", ""]
        candidates = sample_negative_edges(graph, 150, rng=1)
        probs = model.predict_proba(graph, candidates)
        top = candidates[np.argsort(-probs)[:3]]

        rows.append(f"{'link':>10} {'p':>6} {'community':>10} "
                    f"{'mass_in_comm':>13} {'p_after_cf':>11}")
        explainer = LinkRevelio(model, epochs=150, seed=0)
        for u, v in top:
            u, v = int(u), int(v)
            p = float(model.predict_proba(graph, np.array([[u, v]]))[0])
            factual = explainer.explain(graph, u, v)
            counterfactual = explainer.explain(graph, u, v, mode="counterfactual")

            community = {int(n) for n in np.flatnonzero(communities == communities[u])}
            mass = mass_through_nodes(factual, community)

            chosen = select_explanatory_edges(
                counterfactual.edge_scores, 0.7,
                candidate_edges=counterfactual.context_edge_positions)
            keep = np.ones(graph.num_edges, dtype=bool)
            keep[chosen] = False
            p_after = float(model.predict_proba(graph.with_edges(keep),
                                                np.array([[u, v]]))[0])
            same = "same" if communities[u] == communities[v] else "cross"
            rows.append(f"{u:>4} -> {v:<3} {p:>6.3f} {same:>10} "
                        f"{mass:>13.2f} {p_after:>11.3f}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("extension_link_prediction", rows,
                 header="Extension — LinkRevelio on recommended links")
