"""Performance smoke benchmark for the batched masked-forward engine.

Measures the batched engine + flow caching against the legacy serial paths
on the workloads the optimization targets — FlowX Shapley sampling, GNN-LRP
finite differences, the fidelity sparsity grid, and warm-cache Revelio —
asserting numerical equality (1e-8) and writing speedups with engine
counters to ``BENCH_perf.json`` at the repository root.

Run as a pytest marker (seconds-scale budget)::

    PYTHONPATH=src python -m pytest -m perf_smoke benchmarks/bench_perf_smoke.py -q

or as a script::

    PYTHONPATH=src python benchmarks/bench_perf_smoke.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

# The engine must deliver >= SPEEDUP_FLOOR on at least MIN_WINS of the
# named workloads while matching the serial path to EQ_TOL.
SPEEDUP_FLOOR = 3.0
MIN_WINS = 2
EQ_TOL = 1e-8
# With tracing disabled (the default NullSink state) the span() calls left
# in the hot paths must cost less than this fraction of workload wall time.
OBS_OVERHEAD_CEILING = 0.05
# Each timing is the best of REPEATS passes — shields the speedup ratios
# from scheduler/noisy-neighbor spikes without inflating them.
REPEATS = 3


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.2"))


def _build_workload():
    """A trained node GCN on BA-Shapes plus a few motif instances."""
    from repro.datasets import ba_shapes
    from repro.nn import Trainer, build_model

    ds = ba_shapes(scale=_scale(), seed=0)
    model = build_model("gcn", "node", ds.num_features, ds.num_classes, hidden=16, rng=0)
    Trainer(model, lr=0.02, weight_decay=0.0, epochs=60, patience=None).fit_node(ds.graph)
    model.eval()
    pred = model.predict(ds.graph)
    targets = [int(v) for v in ds.motif_nodes if pred[v] == ds.graph.y[v]][:3]
    if not targets:
        targets = [int(ds.motif_nodes[0])]
    return model, ds.graph, targets


def _clear_caches():
    from repro.explain.base import clear_context_cache
    from repro.flows import FLOW_CACHE

    FLOW_CACHE.clear()
    clear_context_cache()


def _timed(fn, setup=None):
    """Best-of-``REPEATS`` wall time; returns the first pass's output."""
    out = None
    best = float("inf")
    for rep in range(REPEATS):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
        if rep == 0:
            out = result
    return out, best


def _measure_obs_overhead(model, graph, target) -> dict:
    """Cost of the disabled tracing instrumentation on a hot workload.

    The instrumented sites call :func:`repro.obs.span` even when tracing is
    off; that call returns a shared no-op context manager. A traced pass
    (MemorySink) counts how many spans one Revelio explain emits; a
    microbenchmark prices one disabled ``span()`` round trip; their product
    bounds the overhead the instrumentation adds to the untraced workload.
    """
    from repro.core.revelio import Revelio
    from repro.obs import MemorySink, span, tracing

    revelio = Revelio(model, epochs=30, seed=0)
    sink = MemorySink()
    _clear_caches()
    with tracing(sink=sink):
        revelio.explain(graph, target)
    span_count = len(sink.records)

    _, workload_s = _timed(lambda: revelio.explain(graph, target),
                           setup=_clear_caches)

    calls = 100_000
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("overhead_probe"):
            pass
    per_call_s = (time.perf_counter() - t0) / calls

    overhead_s = span_count * per_call_s
    return {
        "spans_per_explain": span_count,
        "disabled_span_ns": round(per_call_s * 1e9, 1),
        "workload_seconds": round(workload_s, 4),
        "overhead_seconds": round(overhead_s, 6),
        "overhead_fraction": round(overhead_s / max(workload_s, 1e-9), 6),
        "ceiling": OBS_OVERHEAD_CEILING,
    }


def run_benchmark() -> dict:
    """Execute every comparison; returns the BENCH_perf.json payload."""
    from repro.eval.fidelity import Instance, fidelity_curve
    from repro.explain.flowx import FlowX
    from repro.explain.gnn_lrp import GNNLRP
    from repro.core.revelio import Revelio
    from repro.instrumentation import PERF, PerfCounters

    model, graph, targets = _build_workload()
    results: dict[str, dict] = {}
    perf_before = PERF.snapshot()

    def compare(name, make_explainer):
        serial_s = batched_s = 0.0
        max_err = 0.0
        for t in targets:
            batched, dt_b = _timed(lambda: make_explainer(True).explain(graph, t),
                                   setup=_clear_caches)
            batched_s += dt_b
            serial, dt_s = _timed(lambda: make_explainer(False).explain(graph, t),
                                  setup=_clear_caches)
            serial_s += dt_s
            err = float(np.abs(batched.edge_scores - serial.edge_scores).max())
            max_err = max(max_err, err)
            assert err < EQ_TOL, f"{name}: batched/serial diverged ({err:.2e})"
        results[name] = {
            "serial_seconds": round(serial_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(serial_s / max(batched_s, 1e-9), 2),
            "max_abs_diff": max_err,
            "instances": len(targets),
        }

    compare("flowx", lambda b: FlowX(model, samples=10, finetune_epochs=0,
                                     batched=b, seed=0))
    compare("gnn_lrp", lambda b: GNNLRP(model, batched=b, seed=0))

    # Fidelity grid: explanations computed once, the sweep is what's timed.
    _clear_caches()
    expl = FlowX(model, samples=5, finetune_epochs=0, seed=0)
    instances = [Instance(graph, t) for t in targets]
    explanations = [expl.explain(graph, t) for t in targets]
    grid = [round(0.05 + 0.09 * i, 2) for i in range(10)]
    curve_b, dt_b = _timed(lambda: fidelity_curve(model, instances, explanations, grid))
    curve_s, dt_s = _timed(lambda: fidelity_curve(model, instances, explanations, grid,
                                                  batched=False))
    max_err = max(abs(curve_b[s] - curve_s[s]) for s in curve_b)
    assert max_err < EQ_TOL, f"fidelity_curve diverged ({max_err:.2e})"
    results["fidelity_curve"] = {
        "serial_seconds": round(dt_s, 4),
        "batched_seconds": round(dt_b, 4),
        "speedup": round(dt_s / max(dt_b, 1e-9), 2),
        "max_abs_diff": float(max_err),
        "grid_points": len(grid) * len(targets) * 2,
    }

    # Revelio: cold explain (fresh enumeration + context extraction) vs. a
    # warm re-explain served by the flow/context caches.
    revelio = Revelio(model, epochs=30, seed=0)
    cold, dt_cold = _timed(lambda: revelio.explain(graph, targets[0]),
                           setup=_clear_caches)
    warm, dt_warm = _timed(lambda: revelio.explain(graph, targets[0]))
    np.testing.assert_allclose(warm.edge_scores, cold.edge_scores, atol=EQ_TOL)
    results["revelio_warm_cache"] = {
        "cold_seconds": round(dt_cold, 4),
        "warm_seconds": round(dt_warm, 4),
        "speedup": round(dt_cold / max(dt_warm, 1e-9), 2),
    }

    results["obs_overhead"] = _measure_obs_overhead(model, graph, targets[0])

    counters = PerfCounters.delta(perf_before, PERF.snapshot())
    wins = [n for n in ("flowx", "gnn_lrp", "fidelity_curve")
            if results[n]["speedup"] >= SPEEDUP_FLOOR]
    payload = {
        "scale": _scale(),
        "speedup_floor": SPEEDUP_FLOOR,
        "workloads": results,
        "workloads_meeting_floor": wins,
        "engine_counters": counters,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


@pytest.mark.perf_smoke
def test_perf_smoke():
    payload = run_benchmark()
    wins = payload["workloads_meeting_floor"]
    assert len(wins) >= MIN_WINS, (
        f"only {wins} reached {SPEEDUP_FLOOR}x "
        f"(need {MIN_WINS} of flowx/gnn_lrp/fidelity_curve): "
        f"{ {k: v.get('speedup') for k, v in payload['workloads'].items()} }"
    )
    obs = payload["workloads"]["obs_overhead"]
    assert obs["overhead_fraction"] < OBS_OVERHEAD_CEILING, (
        f"disabled tracing costs {obs['overhead_fraction']:.2%} of the "
        f"workload (ceiling {OBS_OVERHEAD_CEILING:.0%}): {obs}"
    )


def main() -> int:
    payload = run_benchmark()
    print(json.dumps(payload, indent=2))
    wins = payload["workloads_meeting_floor"]
    obs = payload["workloads"]["obs_overhead"]
    ok = len(wins) >= MIN_WINS and \
        obs["overhead_fraction"] < OBS_OVERHEAD_CEILING
    print(f"\n{'PASS' if ok else 'FAIL'}: {len(wins)} workloads >= "
          f"{SPEEDUP_FLOOR}x ({', '.join(wins) or 'none'}); disabled tracing "
          f"overhead {obs['overhead_fraction']:.3%}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
