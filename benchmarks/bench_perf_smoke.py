"""Performance smoke benchmark for the batched masked-forward engine.

Measures the batched engine + flow caching against the legacy serial paths
on the workloads the optimization targets — FlowX Shapley sampling, GNN-LRP
finite differences, the fidelity sparsity grid, warm-cache Revelio, the
CSR-vs-dense-scatter scaling law on citation surrogates, and the lint
parse-cache warm run — asserting
numerical equality (1e-8) and writing speedups with engine counters to
``BENCH_perf.json`` at the repository root. Every run is also appended as
one JSON line to ``BENCH_history.jsonl`` so CI can diff the time series.

Run as a pytest marker (seconds-scale budget)::

    PYTHONPATH=src python -m pytest -m perf_smoke benchmarks/bench_perf_smoke.py -q

or as a script::

    PYTHONPATH=src python benchmarks/bench_perf_smoke.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

# The engine must deliver >= SPEEDUP_FLOOR on at least MIN_WINS of the
# named workloads while matching the serial path to EQ_TOL.  The serial
# baseline shares the model forward with the batched engine, so forward
# optimisations (cached edge norms, fused unmasked spmm) speed up both
# sides and compress this ratio; 2.0 is calibrated against the
# plan-backed serial path, not the original per-edge one.
SPEEDUP_FLOOR = 2.0
MIN_WINS = 2
EQ_TOL = 1e-8
# A warm re-explain served by Revelio's caches must beat the cold explain
# by at least this factor.
WARM_CACHE_FLOOR = 1.2
# On the largest scaling-law size, the scipy CSR kernels must beat the
# dense-scatter (numpy) backend by at least this factor.
SCALING_SPEEDUP_FLOOR = 2.0
# On the largest training-epoch size, a plan-backed training epoch
# (forward + backward through the kernel registry) must beat the
# np.add.at dense-scatter path by at least this factor, with gradient
# parity at EQ_TOL.
TRAINING_SPEEDUP_FLOOR = 2.0
# With tracing disabled (the default NullSink state) the span() calls left
# in the hot paths must cost less than this fraction of workload wall time.
OBS_OVERHEAD_CEILING = 0.05
# A warm `repro lint` run served by the mtime+size parse cache must beat
# the cold run by at least this factor on the repository's own src tree.
# Observed warm speedups are ~3x; 1.5 leaves slack for runner jitter.
LINT_CACHE_FLOOR = 1.5
# Each timing is the best of REPEATS passes — shields the speedup ratios
# from scheduler/noisy-neighbor spikes without inflating them.
REPEATS = 3
# Mask variants evaluated per batched forward in the scaling-law workload.
SCALING_BATCH = 8


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.2"))


def _scaling_sizes() -> list[float]:
    """Cora-surrogate scales for the scaling-law workload.

    The committed BENCH_perf.json is generated with
    ``REPRO_SCALING_SIZES=0.25,1.0,10.0`` (the 10x point is the
    million-message regime); the default keeps CI in seconds.
    """
    raw = os.environ.get("REPRO_SCALING_SIZES", "0.25,1.0")
    return [float(tok) for tok in raw.split(",") if tok.strip()]


def _training_sizes() -> list[float]:
    """Cora-surrogate scales for the training-epoch workload.

    The committed BENCH_perf.json is generated with
    ``REPRO_TRAINING_SIZES=1.0,10.0``; the default keeps CI in seconds.
    """
    raw = os.environ.get("REPRO_TRAINING_SIZES", "1.0")
    return [float(tok) for tok in raw.split(",") if tok.strip()]


def _build_workload():
    """A trained node GCN on BA-Shapes plus a few motif instances."""
    from repro.datasets import ba_shapes
    from repro.nn import Trainer, build_model

    ds = ba_shapes(scale=_scale(), seed=0)
    model = build_model("gcn", "node", ds.num_features, ds.num_classes, hidden=16, rng=0)
    Trainer(model, lr=0.02, weight_decay=0.0, epochs=60, patience=None).fit_node(ds.graph)
    model.eval()
    pred = model.predict(ds.graph)
    targets = [int(v) for v in ds.motif_nodes if pred[v] == ds.graph.y[v]][:3]
    if not targets:
        targets = [int(ds.motif_nodes[0])]
    return model, ds.graph, targets


def _clear_caches():
    from repro.core.revelio import clear_explanation_cache
    from repro.explain.base import clear_context_cache
    from repro.flows import FLOW_CACHE

    FLOW_CACHE.clear()
    clear_context_cache()
    clear_explanation_cache()


def _timed(fn, setup=None):
    """Best-of-``REPEATS`` wall time; returns the first pass's output."""
    out = None
    best = float("inf")
    for rep in range(REPEATS):
        if setup is not None:
            setup()
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
        if rep == 0:
            out = result
    return out, best


def _measure_obs_overhead(model, graph, target) -> dict:
    """Cost of the disabled tracing instrumentation on a hot workload.

    The instrumented sites call :func:`repro.obs.span` even when tracing is
    off; that call returns a shared no-op context manager. A traced pass
    (MemorySink) counts how many spans one Revelio explain emits; a
    microbenchmark prices one disabled ``span()`` round trip; their product
    bounds the overhead the instrumentation adds to the untraced workload.
    """
    from repro.core.revelio import Revelio
    from repro.obs import MemorySink, span, tracing

    revelio = Revelio(model, epochs=30, seed=0)
    sink = MemorySink()
    _clear_caches()
    with tracing(sink=sink):
        revelio.explain(graph, target)
    span_count = len(sink.records)

    _, workload_s = _timed(lambda: revelio.explain(graph, target),
                           setup=_clear_caches)

    calls = 100_000
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("overhead_probe"):
            pass
    per_call_s = (time.perf_counter() - t0) / calls

    overhead_s = span_count * per_call_s
    return {
        "spans_per_explain": span_count,
        "disabled_span_ns": round(per_call_s * 1e9, 1),
        "workload_seconds": round(workload_s, 4),
        "overhead_seconds": round(overhead_s, 6),
        "overhead_fraction": round(overhead_s / max(workload_s, 1e-9), 6),
        "ceiling": OBS_OVERHEAD_CEILING,
    }


def _measure_scaling_law() -> dict:
    """Masked-forward time vs. graph size: CSR kernels vs. dense scatter.

    For each Cora-surrogate scale, times one batched forward over
    ``SCALING_BATCH`` mask variants under the default scipy CSR backend and
    again under the ``numpy`` dense-scatter backend (the pre-kernel
    reference implementation), and pins both masking semantics against the
    serial per-row forward at ``EQ_TOL``.
    """
    from repro.autograd import Tensor, no_grad
    from repro.datasets import cora
    from repro.nn import build_model
    from repro.sparse import use_backend

    sizes = []
    for scale in _scaling_sizes():
        ds = cora(scale=scale, seed=0)
        graph = ds.graph
        model = build_model("gcn", "node", ds.num_features, ds.num_classes,
                            hidden=16, rng=0)
        model.eval()
        L = model.num_layers
        width = model.layer_edge_count(graph)

        rng = np.random.default_rng(0)
        mask_stack = rng.uniform(0.05, 1.0, size=(SCALING_BATCH, L, width))
        keep = rng.random((SCALING_BATCH, graph.num_edges)) < 0.7
        struct_stack = np.ones((SCALING_BATCH, L, width))
        struct_stack[:, :, :graph.num_edges] = keep[:, None, :]

        # Warm the per-graph CSR cache so the timings measure the kernels,
        # not the one-off structure build.
        batched_eq6 = model.forward_masked_batch(graph, mask_stack)
        _, csr_s = _timed(lambda: model.forward_masked_batch(graph, mask_stack))
        with use_backend("numpy"):
            _, dense_s = _timed(lambda: model.forward_masked_batch(graph, mask_stack))

        batched_struct = model.forward_masked_batch(graph, struct_stack,
                                                    structural=True)
        err_eq6 = err_struct = 0.0
        with no_grad():
            for b in (0, SCALING_BATCH - 1):
                masks = [Tensor(mask_stack[b, l]) for l in range(L)]
                ref = model.forward_graph(graph, edge_masks=masks).numpy()
                err_eq6 = max(err_eq6, float(np.abs(batched_eq6[b] - ref).max()))
                ref = model.forward_graph(graph.with_edges(keep[b])).numpy()
                err_struct = max(err_struct,
                                 float(np.abs(batched_struct[b] - ref).max()))
        assert err_eq6 < EQ_TOL, \
            f"scaling_law scale={scale}: Eq.-6 batched/serial diverged ({err_eq6:.2e})"
        assert err_struct < EQ_TOL, \
            f"scaling_law scale={scale}: structural batched/serial diverged ({err_struct:.2e})"

        sizes.append({
            "scale": scale,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "num_features": ds.num_features,
            "csr_seconds": round(csr_s, 4),
            "dense_seconds": round(dense_s, 4),
            "speedup": round(dense_s / max(csr_s, 1e-9), 2),
            "max_abs_diff_eq6": err_eq6,
            "max_abs_diff_structural": err_struct,
        })

    largest = max(sizes, key=lambda s: s["num_edges"])
    return {
        "batch_size": SCALING_BATCH,
        "repeats": REPEATS,
        "sizes": sizes,
        "speedup_largest": largest["speedup"],
        "speedup_floor": SCALING_SPEEDUP_FLOOR,
        "max_abs_diff": max(max(s["max_abs_diff_eq6"],
                                s["max_abs_diff_structural"]) for s in sizes),
    }


def _measure_training_epoch() -> dict:
    """Epoch time (forward + loss + backward) — plan-backed vs. np.add.at.

    For each Cora-surrogate scale, times one full-batch training epoch of a
    node GCN under the default scipy CSR backend and again under the
    ``numpy`` dense-scatter backend (semantically the pre-plan
    ``np.add.at`` training path, now serving as the oracle), and pins the
    gradients of every parameter to ``EQ_TOL`` parity. The optimizer's
    dense weight update is excluded so the measurement isolates the
    message-passing forward/adjoint the kernels own (the update is
    backend-independent and identical in both columns).
    """
    from repro.autograd import cross_entropy
    from repro.datasets import cora
    from repro.nn import build_model
    from repro.sparse import sparse_cache, use_backend

    sizes = []
    max_grad_diff = 0.0
    for scale in _training_sizes():
        ds = cora(scale=scale, seed=0)
        graph = ds.graph
        model = build_model("gcn", "node", ds.num_features, ds.num_classes,
                            hidden=16, rng=0)
        model.train()
        # Warm both plan directions so the timings measure kernel dispatch,
        # not the one-off compile (exactly what Trainer.fit_node does).
        sparse_cache(graph).src_plan

        def epoch():
            model.zero_grad()
            logits = model.forward_graph(graph)
            loss = cross_entropy(logits[graph.train_mask], graph.y[graph.train_mask])
            loss.backward()
            return {id(p): np.array(p.grad, copy=True) for p in model.parameters()}

        plan_grads = epoch()  # warm run doubles as the parity reference
        _, plan_s = _timed(epoch)
        with use_backend("numpy"):
            dense_grads = epoch()
            _, dense_s = _timed(epoch)

        grad_diff = max(
            float(np.abs(plan_grads[key] - dense_grads[key]).max())
            for key in plan_grads
        )
        assert grad_diff < EQ_TOL, (
            f"training_epoch scale={scale}: plan-backed gradients diverged "
            f"from the np.add.at oracle ({grad_diff:.2e})")
        max_grad_diff = max(max_grad_diff, grad_diff)

        sizes.append({
            "scale": scale,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "num_features": ds.num_features,
            "plan_seconds": round(plan_s, 4),
            "dense_seconds": round(dense_s, 4),
            "speedup": round(dense_s / max(plan_s, 1e-9), 2),
            "max_grad_diff": grad_diff,
        })

    largest = max(sizes, key=lambda s: s["num_edges"])
    return {
        "model": "gcn/node/hidden16",
        "repeats": REPEATS,
        "sizes": sizes,
        "speedup_largest": largest["speedup"],
        "speedup_floor": TRAINING_SPEEDUP_FLOOR,
        "max_grad_diff": max_grad_diff,
        "grad_tol": EQ_TOL,
    }


def _measure_lint_cache() -> dict:
    """Cold vs. warm ``repro lint`` over the repository's own src tree.

    Both passes run the full rule set (per-file and whole-program) against
    a throwaway cache file; the warm pass must serve every file from the
    cache and reproduce the cold pass's findings exactly. One pass each —
    best-of-``REPEATS`` would let the cold side hit its own cache.
    """
    import tempfile

    from repro.checks import LintCache, lint_paths

    roots = [REPO_ROOT / "src"]
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "lint_cache.json"
        t0 = time.perf_counter()
        cold = lint_paths(roots, cache=LintCache(cache_path))
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = lint_paths(roots, cache=LintCache(cache_path))
        warm_s = time.perf_counter() - t0

    assert warm.files_from_cache == warm.files_checked, (
        f"warm lint re-parsed {warm.files_checked - warm.files_from_cache} "
        f"of {warm.files_checked} files")
    assert [v.to_dict() for v in warm.violations] == \
        [v.to_dict() for v in cold.violations], \
        "cached findings diverged from the cold run"
    return {
        "files": cold.files_checked,
        "rules": len(cold.rule_codes),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "floor": LINT_CACHE_FLOOR,
    }


def _append_history(payload: dict) -> None:
    """Append this run as one JSON line to ``BENCH_history.jsonl``.

    CI uploads the file alongside BENCH_perf.json, so speedups accumulate
    into a diffable time series across commits instead of each run
    overwriting the last.
    """
    import subprocess
    from datetime import datetime, timezone

    sha = None
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              cwd=REPO_ROOT, capture_output=True, text=True,
                              timeout=10)
        sha = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": sha,
        "payload": payload,
    }
    with HISTORY_PATH.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")


def run_benchmark() -> dict:
    """Execute every comparison; returns the BENCH_perf.json payload."""
    from repro.eval.fidelity import Instance, fidelity_curve
    from repro.explain.flowx import FlowX
    from repro.explain.gnn_lrp import GNNLRP
    from repro.core.revelio import Revelio
    from repro.obs.counters import PERF, PerfCounters
    from repro.obs.names import (
        WORKLOAD_FIDELITY_CURVE,
        WORKLOAD_FLOWX,
        WORKLOAD_GNN_LRP,
        WORKLOAD_LINT_CACHE,
        WORKLOAD_OBS_OVERHEAD,
        WORKLOAD_REVELIO_WARM_CACHE,
        WORKLOAD_SCALING_LAW,
        WORKLOAD_TRAINING_EPOCH,
    )

    model, graph, targets = _build_workload()
    results: dict[str, dict] = {}
    perf_before = PERF.snapshot()

    def compare(name, make_explainer):
        serial_s = batched_s = 0.0
        max_err = 0.0
        for t in targets:
            batched, dt_b = _timed(lambda: make_explainer(True).explain(graph, t),
                                   setup=_clear_caches)
            batched_s += dt_b
            serial, dt_s = _timed(lambda: make_explainer(False).explain(graph, t),
                                  setup=_clear_caches)
            serial_s += dt_s
            err = float(np.abs(batched.edge_scores - serial.edge_scores).max())
            max_err = max(max_err, err)
            assert err < EQ_TOL, f"{name}: batched/serial diverged ({err:.2e})"
        results[name] = {
            "serial_seconds": round(serial_s, 4),
            "batched_seconds": round(batched_s, 4),
            "speedup": round(serial_s / max(batched_s, 1e-9), 2),
            "max_abs_diff": max_err,
            "instances": len(targets),
        }

    compare(WORKLOAD_FLOWX, lambda b: FlowX(model, samples=10, finetune_epochs=0,
                                            batched=b, seed=0))
    compare(WORKLOAD_GNN_LRP, lambda b: GNNLRP(model, batched=b, seed=0))

    # Fidelity grid: explanations computed once, the sweep is what's timed.
    _clear_caches()
    expl = FlowX(model, samples=5, finetune_epochs=0, seed=0)
    instances = [Instance(graph, t) for t in targets]
    explanations = [expl.explain(graph, t) for t in targets]
    grid = [round(0.05 + 0.09 * i, 2) for i in range(10)]
    curve_b, dt_b = _timed(lambda: fidelity_curve(model, instances, explanations, grid))
    curve_s, dt_s = _timed(lambda: fidelity_curve(model, instances, explanations, grid,
                                                  batched=False))
    max_err = max(abs(curve_b[s] - curve_s[s]) for s in curve_b)
    assert max_err < EQ_TOL, f"fidelity_curve diverged ({max_err:.2e})"
    results[WORKLOAD_FIDELITY_CURVE] = {
        "serial_seconds": round(dt_s, 4),
        "batched_seconds": round(dt_b, 4),
        "speedup": round(dt_s / max(dt_b, 1e-9), 2),
        "max_abs_diff": float(max_err),
        "grid_points": len(grid) * len(targets) * 2,
    }

    # Revelio: cold explain (fresh enumeration + context extraction) vs. a
    # warm re-explain served by the flow/context/explanation caches.
    revelio = Revelio(model, epochs=30, seed=0)
    cold, dt_cold = _timed(lambda: revelio.explain(graph, targets[0]),
                           setup=_clear_caches)
    warm, dt_warm = _timed(lambda: revelio.explain(graph, targets[0]))
    np.testing.assert_allclose(warm.edge_scores, cold.edge_scores, atol=EQ_TOL)
    results[WORKLOAD_REVELIO_WARM_CACHE] = {
        "cold_seconds": round(dt_cold, 4),
        "warm_seconds": round(dt_warm, 4),
        "speedup": round(dt_cold / max(dt_warm, 1e-9), 2),
        "floor": WARM_CACHE_FLOOR,
    }

    results[WORKLOAD_SCALING_LAW] = _measure_scaling_law()

    results[WORKLOAD_TRAINING_EPOCH] = _measure_training_epoch()

    results[WORKLOAD_OBS_OVERHEAD] = _measure_obs_overhead(model, graph, targets[0])

    results[WORKLOAD_LINT_CACHE] = _measure_lint_cache()

    counters = PerfCounters.delta(perf_before, PERF.snapshot())
    wins = [n for n in (WORKLOAD_FLOWX, WORKLOAD_GNN_LRP, WORKLOAD_FIDELITY_CURVE)
            if results[n]["speedup"] >= SPEEDUP_FLOOR]
    # Carry forward workload entries owned by the other bench scripts
    # (runner_scaling, serving_load): the gate fails any committed
    # workload missing from the latest run, so overwriting their rows
    # here would turn a perf-smoke rerun into a spurious regression.
    if RESULT_PATH.exists():
        try:
            foreign = json.loads(RESULT_PATH.read_text()).get("workloads", {})
        except json.JSONDecodeError:
            foreign = {}
        for name, entry in foreign.items():
            results.setdefault(name, entry)
    payload = {
        "scale": _scale(),
        "speedup_floor": SPEEDUP_FLOOR,
        "workloads": results,
        "workloads_meeting_floor": wins,
        "engine_counters": counters,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload)
    return payload


def _check_payload(payload: dict) -> list[str]:
    """Return the list of failed acceptance checks (empty = pass)."""
    failures = []
    wins = payload["workloads_meeting_floor"]
    if len(wins) < MIN_WINS:
        failures.append(
            f"only {wins} reached {SPEEDUP_FLOOR}x "
            f"(need {MIN_WINS} of flowx/gnn_lrp/fidelity_curve)")
    warm = payload["workloads"]["revelio_warm_cache"]
    if warm["speedup"] < WARM_CACHE_FLOOR:
        failures.append(
            f"warm Revelio re-explain only {warm['speedup']}x over cold "
            f"(floor {WARM_CACHE_FLOOR}x)")
    scaling = payload["workloads"]["scaling_law"]
    if scaling["speedup_largest"] < SCALING_SPEEDUP_FLOOR:
        failures.append(
            f"CSR kernels only {scaling['speedup_largest']}x over dense "
            f"scatter on the largest size (floor {SCALING_SPEEDUP_FLOOR}x)")
    training = payload["workloads"]["training_epoch"]
    if training["speedup_largest"] < TRAINING_SPEEDUP_FLOOR:
        failures.append(
            f"plan-backed training epoch only {training['speedup_largest']}x "
            f"over the np.add.at path on the largest size "
            f"(floor {TRAINING_SPEEDUP_FLOOR}x)")
    if training["max_grad_diff"] >= EQ_TOL:
        failures.append(
            f"training gradients diverged from the np.add.at oracle "
            f"({training['max_grad_diff']:.2e} >= {EQ_TOL})")
    obs = payload["workloads"]["obs_overhead"]
    if obs["overhead_fraction"] >= OBS_OVERHEAD_CEILING:
        failures.append(
            f"disabled tracing costs {obs['overhead_fraction']:.2%} of the "
            f"workload (ceiling {OBS_OVERHEAD_CEILING:.0%})")
    lint = payload["workloads"]["lint_cache"]
    if lint["speedup"] < LINT_CACHE_FLOOR:
        failures.append(
            f"warm lint run only {lint['speedup']}x over cold "
            f"(floor {LINT_CACHE_FLOOR}x)")
    return failures


@pytest.mark.perf_smoke
def test_perf_smoke():
    payload = run_benchmark()
    failures = _check_payload(payload)
    assert not failures, (
        f"{failures}: "
        f"{ {k: v.get('speedup') for k, v in payload['workloads'].items()} }"
    )


def main() -> int:
    payload = run_benchmark()
    print(json.dumps(payload, indent=2))
    failures = _check_payload(payload)
    wins = payload["workloads_meeting_floor"]
    scaling = payload["workloads"]["scaling_law"]
    training = payload["workloads"]["training_epoch"]
    obs = payload["workloads"]["obs_overhead"]
    print(f"\n{'PASS' if not failures else 'FAIL'}: {len(wins)} workloads >= "
          f"{SPEEDUP_FLOOR}x ({', '.join(wins) or 'none'}); CSR "
          f"{scaling['speedup_largest']}x over dense scatter; training epoch "
          f"{training['speedup_largest']}x over np.add.at "
          f"(grad diff {training['max_grad_diff']:.1e}); disabled "
          f"tracing overhead {obs['overhead_fraction']:.3%}")
    for failure in failures:
        print(f"  FAIL: {failure}")
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
