"""Table II (empirical): runtime scaling with the number of message flows.

The complexity table predicts that GNNExplainer and Revelio are dominated
by ``O(T·T_Φ)`` — flat in |F| up to the mask bookkeeping — while GNN-LRP
grows as ``O(|F|·T_Φ)`` and FlowX as ``O(S·L·|E|·T_Φ)``. This bench sweeps
graph density so |F| grows, times one explanation per method per size, and
reports the measured growth ratios.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import Revelio
from repro.explain import FlowX, GNNLRP, GNNExplainer
from repro.flows import count_flows
from repro.graph import Graph, erdos_renyi_edges
from repro.nn import build_model

from conftest import write_result

DENSITIES = (0.08, 0.16, 0.28)
NUM_NODES = 22


def make_graph(p: float, seed: int = 0) -> Graph:
    edges = erdos_renyi_edges(NUM_NODES, p, rng=seed)
    rng = np.random.default_rng(seed)
    return Graph(edge_index=edges, x=rng.normal(size=(NUM_NODES, 6)))


def test_table2_scaling(benchmark):
    """Sweep |F| and time each method once per size."""
    model = build_model("gcn", "node", 6, 2, hidden=16, rng=0)
    model.eval()
    target = 0
    budget = dict(epochs=30)

    def sweep():
        rows = [f"{'|F|':>8} {'gnnexplainer':>13} {'gnn_lrp':>10} "
                f"{'flowx':>10} {'revelio':>10}"]
        raw = {}
        for p in DENSITIES:
            graph = make_graph(p)
            flows = count_flows(graph, 3, target=target)
            times = {}
            methods = {
                "gnnexplainer": GNNExplainer(model, epochs=30),
                "gnn_lrp": GNNLRP(model),
                "flowx": FlowX(model, samples=2, finetune_epochs=20),
                "revelio": Revelio(model, epochs=30),
            }
            for name, explainer in methods.items():
                t0 = time.perf_counter()
                explainer.explain(graph, target=target)
                times[name] = time.perf_counter() - t0
            raw[flows] = times
            rows.append(f"{flows:>8} {times['gnnexplainer']:>12.3f}s "
                        f"{times['gnn_lrp']:>9.3f}s {times['flowx']:>9.3f}s "
                        f"{times['revelio']:>9.3f}s")
        # growth ratio largest/smallest |F|
        sizes = sorted(raw)
        rows.append("")
        rows.append("growth ratio (largest / smallest |F|):")
        for name in ("gnnexplainer", "gnn_lrp", "flowx", "revelio"):
            ratio = raw[sizes[-1]][name] / max(raw[sizes[0]][name], 1e-9)
            rows.append(f"  {name:<13} {ratio:.1f}x")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("table2_scaling", rows,
                 header="Table II (empirical) — runtime vs number of flows")
