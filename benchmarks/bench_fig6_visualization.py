"""Fig. 6: qualitative visualization of explanatory subgraphs.

Renders, for one BA-Shapes node instance (GCN) and one BA-2motifs graph
instance (GIN), each method's top explanatory edges against the planted
house motif — the text counterpart of the paper's node-link plots,
including the "missed motif edge" markers (dashed red in the paper).
"""

from __future__ import annotations

import pytest

from repro.eval import Instance, build_instances
from repro.eval.experiments import method_config
from repro.explain import make_explainer
from repro.nn.zoo import get_model
from repro.viz import explanation_summary, render_explanation

from conftest import write_result

METHODS = ("gradcam", "gnnexplainer", "gnn_lrp", "flowx", "revelio")
CASES = (("ba_shapes", "gcn"), ("ba_2motifs", "gin"))


@pytest.mark.parametrize("dataset_name,conv", CASES)
def test_fig6_case(benchmark, dataset_name, conv):
    """Render one Fig. 6 panel set (all methods, one instance)."""
    model, dataset, _ = get_model(dataset_name, conv)
    instances = build_instances(dataset, 1, seed=0, motif_only=True,
                                correct_only=True, model=model)
    if not instances:
        instances = build_instances(dataset, 1, seed=0, motif_only=True)
    inst = instances[0]

    def explain_all():
        out = []
        for method in METHODS:
            explainer = make_explainer(method, model, seed=0,
                                       **method_config(method, 0.1))
            if hasattr(explainer, "fit"):
                if model.task == "node":
                    ctx = explainer.node_context(inst.graph, inst.target)
                    explainer.fit([(ctx.subgraph, ctx.local_target)])
                else:
                    explainer.fit([(inst.graph, None)])
            out.append(explainer.explain(inst.graph, target=inst.target))
        return out

    explanations = benchmark.pedantic(explain_all, rounds=1, iterations=1)
    rows = []
    for exp in explanations:
        rows.append(render_explanation(inst.graph, exp, k=10))
        summary = explanation_summary(inst.graph, exp, k=10)
        rows.append(f"-> motif coverage: {summary['top_in_motif']}/{summary['motif_size']} "
                    f"ground-truth edges in top-10")
        rows.append("")
    write_result(f"fig6_visualization_{dataset_name}_{conv}", rows,
                 header=f"Fig. 6 — explanatory subgraphs ({dataset_name}, {conv.upper()})")
