"""Extension bench: top-k relevant-walk search vs. exhaustive flow methods.

The related work the paper cites (sGNN-LRP, EMP/AMP) finds top-k relevant
walks without enumerating all flows. This bench measures what that buys:
per-instance runtime and top-flow agreement with GNN-LRP / Revelio, as the
instance's flow count grows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import top_flow_overlap
from repro.core import Revelio
from repro.explain import GNNLRP, RelevantWalks
from repro.flows import count_flows
from repro.graph import Graph, erdos_renyi_edges
from repro.nn import build_model

from conftest import write_result

DENSITIES = (0.10, 0.20, 0.32)
NUM_NODES = 20


def _trained_target():
    """A briefly-trained GCN so the methods explain real reasoning."""
    from repro.graph import sbm_edges
    from repro.nn import Trainer

    rng = np.random.default_rng(0)
    edges = sbm_edges([30, 30], 0.25, 0.02, rng=rng)
    y = np.array([0] * 30 + [1] * 30)
    x = rng.normal(size=(60, 6)) + y[:, None]
    train = Graph(edge_index=edges, x=x, y=y, train_mask=np.ones(60, dtype=bool))
    model = build_model("gcn", "node", 6, 2, hidden=16, rng=0)
    Trainer(model, epochs=60, patience=None).fit_node(train)
    model.eval()
    return model


def test_relevant_walks_extension(benchmark):
    """Runtime + agreement sweep for the walk-search extension."""
    rng = np.random.default_rng(0)
    model = _trained_target()

    def sweep():
        rows = [f"{'|F|':>8} {'walks(k=10)':>12} {'gnn_lrp':>10} {'revelio':>10} "
                f"{'ovl(lrp)':>9} {'ovl(rev)':>9}"]
        for p in DENSITIES:
            graph = Graph(edge_index=erdos_renyi_edges(NUM_NODES, p, rng=0),
                          x=rng.normal(size=(NUM_NODES, 6)))
            flows = count_flows(graph, 3, target=0)

            timings = {}
            explanations = {}
            for name, explainer in (
                ("walks", RelevantWalks(model, k=10)),
                ("gnn_lrp", GNNLRP(model)),
                ("revelio", Revelio(model, epochs=30, seed=0)),
            ):
                t0 = time.perf_counter()
                explanations[name] = explainer.explain(graph, target=0)
                timings[name] = time.perf_counter() - t0

            ovl_lrp = top_flow_overlap(explanations["walks"],
                                       explanations["gnn_lrp"], k=10)
            ovl_rev = top_flow_overlap(explanations["walks"],
                                       explanations["revelio"], k=10)
            rows.append(
                f"{flows:>8} {timings['walks']:>11.3f}s {timings['gnn_lrp']:>9.3f}s "
                f"{timings['revelio']:>9.3f}s {ovl_lrp:>9.2f} {ovl_rev:>9.2f}"
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("extension_relevant_walks", rows,
                 header="Extension — top-k relevant-walk search vs exhaustive flow methods")
