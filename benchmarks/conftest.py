"""Shared benchmark configuration.

Every benchmark regenerates one paper artifact (table or figure), writes
its rows to ``benchmarks/results/<artifact>.txt`` and benchmarks a
representative unit of the underlying computation with pytest-benchmark.

Cost knobs (environment):

``REPRO_SCALE``          dataset scale (default 0.2 for benches)
``REPRO_INSTANCES``      instances per dataset (paper: 50; default 4)
``REPRO_EFFORT``         explainer budget multiplier (paper: 1.0; default 0.1)
``REPRO_BENCH_DATASETS`` comma list restricting dataset coverage
``REPRO_BENCH_CONVS``    comma list restricting model coverage
``REPRO_BENCH_FULL=1``   run the paper's full grid (hours on CPU)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_DEFAULTS = {
    "REPRO_SCALE": "0.2",
    "REPRO_INSTANCES": "4",
    "REPRO_EFFORT": "0.1",
}


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)
    for key, value in _DEFAULTS.items():
        os.environ.setdefault(key, value)


def full_grid() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_datasets(default: tuple[str, ...]) -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_DATASETS")
    if raw:
        return tuple(d.strip() for d in raw.split(",") if d.strip())
    if full_grid():
        from repro.datasets import DATASET_NAMES

        return DATASET_NAMES
    return default


def bench_convs(default: tuple[str, ...] = ("gcn",)) -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_CONVS")
    if raw:
        return tuple(c.strip() for c in raw.split(",") if c.strip())
    if full_grid():
        return ("gcn", "gin", "gat")
    return default


def write_result(name: str, rows: list[str], header: str | None = None) -> Path:
    """Write artifact rows to benchmarks/results/<name>.txt and echo them."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    lines = []
    if header:
        lines.append(header)
        lines.append("=" * len(header))
    lines.extend(rows)
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print(f"\n[{name}]")
    print(text)
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
