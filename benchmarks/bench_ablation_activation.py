"""Ablation A1: the layer-weight activation choice (paper §IV-B).

The paper motivates ``exp`` over ``softplus`` (both positive; exp has the
desired gradient profile) and rules out ReLU-style activations that can
zero out masks; ``identity`` is included as the degenerate control with
uncertain signs. Compares factual Fidelity− across the sparsity grid.
"""

from __future__ import annotations

import pytest

from repro.core.revelio import LAYER_WEIGHT_ACTIVATIONS
from repro.eval import (
    DEFAULT_SPARSITIES,
    ExperimentConfig,
    build_instances,
    fidelity_minus,
)
from repro.eval.timing import time_explainer
from repro.core import Revelio
from repro.nn.zoo import get_model

from conftest import bench_datasets, write_result

DATASETS = bench_datasets(("ba_shapes", "ba_2motifs"))


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_ablation_layer_weight_activation(benchmark, dataset_name):
    """Fidelity− per layer-weight activation on one dataset."""
    conv = "gin" if dataset_name == "ba_2motifs" else "gcn"
    model, dataset, _ = get_model(dataset_name, conv)
    config = ExperimentConfig()
    instances = build_instances(dataset, config.resolved_instances(), seed=0)

    def run():
        rows = [f"{'activation':<12} " + "  ".join(f"s={s:.1f}" for s in DEFAULT_SPARSITIES)]
        for activation in LAYER_WEIGHT_ACTIVATIONS:
            explainer = Revelio(model, epochs=max(25, int(500 * config.resolved_effort())),
                                layer_weight_activation=activation, seed=0)
            result = time_explainer(explainer, instances)
            curve = [fidelity_minus(model, instances, result.explanations, s)
                     for s in DEFAULT_SPARSITIES]
            rows.append(f"{activation:<12} " + "  ".join(f"{v:+.3f}" for v in curve))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(f"ablation_activation_{dataset_name}", rows,
                 header=f"Ablation A1 — layer-weight activation ({dataset_name}, {conv.upper()})")
