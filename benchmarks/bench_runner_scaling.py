"""Runner scaling smoke: serial vs 4-worker wall-clock on a fidelity grid.

Times a small fidelity grid through ``repro.runner`` twice — inline
(``workers=1``) and across a 4-worker pool — asserting the aggregated
rows are byte-identical, and times a pure-orchestration grid of blocking
jobs that isolates the pool's dispatch/journal overhead from the
compute. Results are merged into ``BENCH_perf.json`` at the repository
root under ``workloads/runner_scaling``.

The ≥2× speedup floor applies to whichever measurement the hardware can
physically deliver: the real fidelity grid needs ≥4 usable cores
(CPU-bound numpy in sibling processes cannot beat serial on fewer); the
orchestration grid overlaps blocking jobs and must clear the floor on
any machine.

Run as a pytest marker (seconds-scale budget)::

    PYTHONPATH=src python -m pytest -m runner_slow benchmarks/bench_runner_scaling.py -q

or as a script::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

SPEEDUP_FLOOR = 2.0
WORKERS = 4
SLEEP_JOBS = 8
SLEEP_SECONDS = 0.25

GRID = {"dataset": "tree_cycles", "conv": "gcn",
        "methods": ("gradcam", "gnnexplainer", "revelio")}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _config():
    from repro.eval import ExperimentConfig

    return ExperimentConfig(scale=float(os.environ.get("REPRO_SCALE", "0.2")),
                            num_instances=8, effort=0.1,
                            sparsities=(0.5, 0.7, 0.9), seed=0)


def _run_grid(workers: int) -> tuple[dict, float]:
    from repro.runner import run_planned_experiment

    t0 = time.perf_counter()
    result = run_planned_experiment("fidelity", GRID["dataset"], GRID["conv"],
                                    GRID["methods"], config=_config(),
                                    workers=workers)
    return result, time.perf_counter() - t0


def _run_sleep_grid(workers: int) -> float:
    from repro.runner import JobSpec, run_jobs

    jobs = [JobSpec(id=f"sleep:{i:03d}", kind="sleep",
                    payload={"seconds": SLEEP_SECONDS}) for i in range(SLEEP_JOBS)]
    t0 = time.perf_counter()
    records = run_jobs(jobs, workers=workers)
    elapsed = time.perf_counter() - t0
    assert all(r["status"] == "ok" for r in records.values())
    return elapsed


def run_benchmark() -> dict:
    from repro.runner import plan_artifact

    # Warm the zoo checkpoint + context before timing either path, so the
    # comparison measures explanation work, not one-off model training.
    plan_artifact("fidelity", GRID["dataset"], GRID["conv"], GRID["methods"],
                  config=_config())

    serial_result, serial_s = _run_grid(workers=1)
    parallel_result, parallel_s = _run_grid(workers=WORKERS)
    assert serial_result["rows"] == parallel_result["rows"], \
        "serial and 4-worker fidelity rows diverged"
    assert parallel_result["jobs"]["failed"] == 0

    sleep_serial_s = _run_sleep_grid(workers=1)
    sleep_parallel_s = _run_sleep_grid(workers=WORKERS)

    cpus = _usable_cpus()
    payload = {
        "cpus": cpus,
        "workers": WORKERS,
        "speedup_floor": SPEEDUP_FLOOR,
        "fidelity_grid": {
            "dataset": GRID["dataset"],
            "methods": list(GRID["methods"]),
            "jobs": parallel_result["jobs"]["total"],
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "speedup": round(serial_s / max(parallel_s, 1e-9), 2),
            "rows_identical": True,
        },
        "orchestration": {
            "jobs": SLEEP_JOBS,
            "job_seconds": SLEEP_SECONDS,
            "serial_seconds": round(sleep_serial_s, 3),
            "parallel_seconds": round(sleep_parallel_s, 3),
            "speedup": round(sleep_serial_s / max(sleep_parallel_s, 1e-9), 2),
        },
    }

    # The orchestration grid must always parallelize; the compute grid only
    # can when the machine actually has cores for the workers.
    assert payload["orchestration"]["speedup"] >= SPEEDUP_FLOOR, \
        f"pool failed to overlap blocking jobs: {payload['orchestration']}"
    if cpus >= WORKERS:
        assert payload["fidelity_grid"]["speedup"] >= SPEEDUP_FLOOR, \
            f"parallel fidelity grid below {SPEEDUP_FLOOR}x: {payload['fidelity_grid']}"

    from repro.obs.names import WORKLOAD_RUNNER_SCALING

    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    results = existing.setdefault("workloads", {})
    results[WORKLOAD_RUNNER_SCALING] = payload
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    return payload


@pytest.mark.runner_slow
def test_runner_scaling_smoke():
    payload = run_benchmark()
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
