"""Table IV: explanation AUC against planted motifs on synthetic datasets.

Instances are motif nodes/graphs the model classifies correctly; each
method's edge ranking is scored against the ground-truth motif edges. The
paper's shape: FlowX and Revelio lead, with Revelio the most consistent.
Both the factual and counterfactual blocks are regenerated.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentConfig, run_auc_experiment
from repro.eval.experiments import ALL_METHODS, COUNTERFACTUAL_METHODS

from conftest import bench_convs, bench_datasets, write_result

DATASETS = tuple(d for d in bench_datasets(("ba_shapes", "tree_cycles", "ba_2motifs"))
                 if d in ("ba_shapes", "tree_cycles", "ba_2motifs"))
CONVS = tuple(c for c in bench_convs(("gcn", "gin")) if c != "gat")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("conv", CONVS)
def test_table4_cell(benchmark, dataset, conv):
    """Regenerate one Table IV column (factual + counterfactual blocks)."""
    def run():
        factual = run_auc_experiment(dataset, conv, ALL_METHODS, mode="factual",
                                     config=ExperimentConfig())
        counter = run_auc_experiment(dataset, conv, COUNTERFACTUAL_METHODS,
                                     mode="counterfactual",
                                     config=ExperimentConfig())
        return factual, counter

    factual, counter = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["-- factual explanation --", *factual["rows"],
            "-- counterfactual explanation --", *counter["rows"]]
    write_result(f"table4_auc_{dataset}_{conv}", rows,
                 header=f"Table IV — explanation AUC ({dataset}, {conv.upper()})")
