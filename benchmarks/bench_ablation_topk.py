"""Ablation A3: top-k flow preselection (the paper's §VI future work).

Compares full Revelio against :class:`TopKRevelio` at several budgets
``k`` and across preselection strategies, reporting explanation quality
(motif AUC) and per-instance runtime. The future-work hypothesis: a small
``k`` retains most quality at lower cost on dense instances.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import Revelio, TopKRevelio
from repro.eval import ExperimentConfig, build_instances, mean_explanation_auc
from repro.nn.zoo import get_model

from conftest import write_result

K_VALUES = (8, 32, 128)
STRATEGIES = ("gradient", "walk_weight", "random")


def test_ablation_topk_preselection(benchmark):
    """AUC and runtime vs preselection budget on BA-Shapes/GCN."""
    model, dataset, _ = get_model("ba_shapes", "gcn")
    config = ExperimentConfig()
    epochs = max(25, int(500 * config.resolved_effort()))
    instances = build_instances(dataset, config.resolved_instances(), seed=0,
                                motif_only=True, correct_only=True, model=model)
    if not instances:
        instances = build_instances(dataset, config.resolved_instances(), seed=0,
                                    motif_only=True)
    graphs = [inst.graph for inst in instances]

    def run():
        rows = [f"{'variant':<24} {'auc':>6} {'sec/inst':>9}"]

        def evaluate(explainer, label):
            t0 = time.perf_counter()
            explanations = [explainer.explain(i.graph, target=i.target)
                            for i in instances]
            elapsed = (time.perf_counter() - t0) / len(instances)
            auc = mean_explanation_auc(graphs, explanations)
            rows.append(f"{label:<24} {auc:>6.3f} {elapsed:>8.3f}s")

        evaluate(Revelio(model, epochs=epochs, seed=0), "full")
        for k in K_VALUES:
            evaluate(TopKRevelio(model, k=k, epochs=epochs, seed=0), f"topk(k={k})")
        for strategy in STRATEGIES[1:]:
            evaluate(TopKRevelio(model, k=K_VALUES[1], strategy=strategy,
                                 epochs=epochs, seed=0),
                     f"topk(k={K_VALUES[1]}, {strategy})")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("ablation_topk", rows,
                 header="Ablation A3 — top-k flow preselection (ba_shapes, GCN)")
