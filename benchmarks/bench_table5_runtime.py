"""Table V: mean per-instance running time of every method.

The paper's headline: Revelio's runtime sits near GNNExplainer's (both are
``O(T·T_Φ)``-dominated) while the other flow-based methods (GNN-LRP,
FlowX) and SubgraphX scale with the number of flows. PGExplainer reports
training time separately from per-instance inference, as in the paper.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentConfig, run_runtime_experiment
from repro.eval.experiments import ALL_METHODS

from conftest import bench_convs, bench_datasets, write_result

DATASETS = bench_datasets(("tree_cycles", "mutag"))
CONVS = bench_convs(("gcn",))


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("conv", CONVS)
def test_table5_column(benchmark, dataset, conv):
    """Regenerate one Table V column (all methods on one dataset)."""
    if conv == "gat" and dataset in ("ba_shapes", "tree_cycles", "ba_2motifs"):
        pytest.skip("GAT N/A on synthetic datasets (Table III)")

    def run():
        return run_runtime_experiment(dataset, conv, ALL_METHODS,
                                      config=ExperimentConfig())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = list(result["rows"])
    times = result["mean_seconds"]
    if "revelio" in times and "gnn_lrp" in times:
        speedup = times["gnn_lrp"] / max(times["revelio"], 1e-9)
        rows.append(f"# revelio speedup vs gnn_lrp: {speedup:.1f}x")
    if "revelio" in times and "flowx" in times:
        speedup = times["flowx"] / max(times["revelio"], 1e-9)
        rows.append(f"# revelio speedup vs flowx:   {speedup:.1f}x")
    write_result(f"table5_runtime_{dataset}_{conv}", rows,
                 header=f"Table V — mean seconds per instance ({dataset}, {conv.upper()})")
