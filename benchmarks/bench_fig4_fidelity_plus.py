"""Fig. 4: Fidelity+ vs. sparsity for counterfactual explanations.

Methods with a counterfactual objective (GNNExplainer, PGExplainer,
GraphMask, FlowX, Revelio) re-optimize against Eq. (2)/(9); gradient /
search methods reuse their factual scores, as in the paper. Higher is
better.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentConfig, run_fidelity_experiment
from repro.eval.experiments import ALL_METHODS

from conftest import bench_convs, bench_datasets, write_result

DATASETS = bench_datasets(("ba_shapes", "tree_cycles", "mutag"))
CONVS = bench_convs(("gcn",))
PANELS = [(d, c) for d in DATASETS for c in CONVS
          if not (c == "gat" and d in ("ba_shapes", "tree_cycles", "ba_2motifs"))]


@pytest.mark.parametrize("dataset,conv", PANELS)
def test_fig4_panel(benchmark, dataset, conv):
    """Regenerate one Fig. 4 panel."""
    def run():
        return run_fidelity_experiment(dataset, conv, ALL_METHODS,
                                       mode="counterfactual",
                                       config=ExperimentConfig())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(f"fig4_fidelity_plus_{dataset}_{conv}", result["rows"],
                 header=f"Fig. 4 — Fidelity+ vs sparsity ({dataset}, {conv.upper()})")
