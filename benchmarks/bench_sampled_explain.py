"""Sampled-explanation workload: receptive-field path vs. the full graph.

Generates a citation surrogate well past Table III sizes (25x Cora by
default — ~67,700 nodes / ~264,000 directed edges), explains a spread of
targets twice — once through the ordinary full-graph path and once
through :class:`repro.sampling.SampledExplainRuntime` — and asserts the
two claims the sampling subsystem makes:

* **exactness** — lifted sampled edge scores match the full-graph path to
  ``PARITY_TOL`` (1e-8) with equal predicted classes, per explainer;
* **boundedness** — the sampled path clears :data:`SPEEDUP_FLOOR` in
  wall-clock and its ``tracemalloc`` peak stays under
  :data:`MEMORY_RATIO_CEILING` of the full path's peak, because its
  working set is the receptive field, not the graph.

Results are merged into ``BENCH_perf.json`` under
``workloads/sampled_explain`` and the full merged payload is appended to
``BENCH_history.jsonl`` for the ``repro bench --check`` gate.

Run as a pytest marker (minutes-scale budget)::

    PYTHONPATH=src python -m pytest -m sampled_slow benchmarks/bench_sampled_explain.py -q

as a script::

    PYTHONPATH=src python benchmarks/bench_sampled_explain.py

or as the CI smoke (small graph, parity asserts only, no artifact
writes)::

    PYTHONPATH=src python benchmarks/bench_sampled_explain.py --smoke
"""

from __future__ import annotations

import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

DATASET = "cora"
CONV = "gcn"
SPEEDUP_FLOOR = 3.0
MEMORY_RATIO_CEILING = 0.5
PARITY_TOL = 1e-8
NUM_TARGETS = 5

#: (explainer, params) pairs the workload sweeps. Deterministic,
#: fit-free methods so a fresh instance per path answers identically.
EXPLAINERS = (
    ("gradcam", {}),
    ("revelio", {"epochs": 10}),
)


def _scale(smoke: bool) -> float:
    return float(os.environ.get("REPRO_SAMPLED_SCALE",
                                "0.5" if smoke else "25.0"))


def _clear_caches() -> None:
    """Cold-start both paths: no cross-path or cross-phase cache transfer."""
    from repro.core.revelio import clear_explanation_cache
    from repro.explain.base import clear_context_cache

    clear_context_cache()
    clear_explanation_cache()


def _pick_targets(graph, count: int) -> list[int]:
    """Deterministic spread of explainable nodes (in-degree >= 2)."""
    import numpy as np

    eligible = np.flatnonzero(graph.in_degree() >= 2)
    stride = max(1, eligible.size // count)
    return [int(eligible[(i * stride) % eligible.size]) for i in range(count)]


def _run_path(model, graph, targets, *, sampled: bool, mode: str = "factual"):
    """Time one path over every (explainer, target) cell, traced peak.

    Fresh explainer per cell on both paths (the serving runtime's
    parity discipline); the sampled path wraps it in
    ``SampledExplainRuntime`` and the full path calls it directly.
    """
    from repro.explain import ExplainTarget, make_explainer
    from repro.sampling import SampledExplainRuntime

    _clear_caches()
    results: dict[tuple[str, int], object] = {}
    tracemalloc.start()
    t0 = time.perf_counter()
    for name, params in EXPLAINERS:
        for target in targets:
            explainer = make_explainer(name, model, seed=0, **params)
            if sampled:
                explanation = SampledExplainRuntime(explainer).explain(
                    graph, ExplainTarget.node(target), mode=mode)
            else:
                explanation = explainer.explain(
                    graph, ExplainTarget.node(target), mode=mode)
            results[(name, target)] = explanation
    wall_s = time.perf_counter() - t0
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return results, wall_s, peak_bytes


def _max_divergence(full, sampled) -> tuple[float, int]:
    """(max |edge-score diff|, class mismatches) across all cells."""
    import numpy as np

    worst = 0.0
    mismatches = 0
    for key, full_exp in full.items():
        sampled_exp = sampled[key]
        worst = max(worst, float(np.abs(
            full_exp.edge_scores - sampled_exp.edge_scores).max()))
        if full_exp.predicted_class != sampled_exp.predicted_class \
                or full_exp.target != sampled_exp.target:
            mismatches += 1
    return worst, mismatches


def run_benchmark(*, smoke: bool = False) -> dict:
    from repro.datasets import load_dataset
    from repro.nn.models import build_model

    scale = _scale(smoke)
    dataset = load_dataset(DATASET, scale=scale, seed=0)
    graph = dataset.graph
    # Untrained weights: parity and cost are properties of the forward
    # machinery, not the fit, and training a 25x graph would dominate the
    # harness without sharpening either claim.
    model = build_model(CONV, "node", graph.num_features, dataset.num_classes,
                        rng=0)
    targets = _pick_targets(graph, 3 if smoke else NUM_TARGETS)

    full, full_s, full_peak = _run_path(model, graph, targets, sampled=False)
    sampled, sampled_s, sampled_peak = _run_path(model, graph, targets,
                                                 sampled=True)
    max_diff, mismatches = _max_divergence(full, sampled)

    assert max_diff <= PARITY_TOL, \
        f"sampled edge scores diverged from the full path: {max_diff}"
    assert mismatches == 0, \
        f"{mismatches} cell(s) changed predicted class or target under sampling"

    sampled_meta = next(iter(sampled.values())).meta["sampled"]
    payload = {
        "dataset": DATASET,
        "conv": CONV,
        "scale": scale,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "explainers": [name for name, _ in EXPLAINERS],
        "targets": targets,
        "num_hops": sampled_meta["num_hops"],
        "speedup_floor": SPEEDUP_FLOOR,
        "memory_ratio_ceiling": MEMORY_RATIO_CEILING,
        "full_seconds": round(full_s, 3),
        "sampled_seconds": round(sampled_s, 3),
        "speedup": round(full_s / max(sampled_s, 1e-9), 2),
        "full_peak_mb": round(full_peak / 2**20, 1),
        "sampled_peak_mb": round(sampled_peak / 2**20, 1),
        "memory_ratio": round(sampled_peak / max(full_peak, 1), 3),
        "max_abs_diff": max_diff,
        "parity": f"<= {PARITY_TOL}",
    }
    if smoke:
        return {"mode": "smoke", **payload}

    assert payload["speedup"] >= SPEEDUP_FLOOR, \
        f"sampled path only {payload['speedup']}x over full graph: {payload}"
    assert payload["memory_ratio"] < MEMORY_RATIO_CEILING, \
        f"sampled peak {payload['memory_ratio']} of full-path peak: {payload}"

    _write_artifacts(payload)
    return payload


def _write_artifacts(payload: dict) -> None:
    """Merge into BENCH_perf.json, append the merged payload to history."""
    from repro.obs.names import WORKLOAD_SAMPLED_EXPLAIN

    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    results = existing.setdefault("workloads", {})
    results[WORKLOAD_SAMPLED_EXPLAIN] = payload
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    # The bench gate reads the *latest* history record and requires every
    # committed workload in it, so append the full merged table.
    import subprocess
    from datetime import datetime, timezone

    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              cwd=REPO_ROOT, capture_output=True, text=True,
                              timeout=10)
        sha = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": sha,
        "payload": existing,
    }
    with HISTORY_PATH.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")


@pytest.mark.sampled_slow
def test_sampled_explain():
    payload = run_benchmark()
    print(json.dumps(payload, indent=2))


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    payload = run_benchmark(smoke=smoke)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
