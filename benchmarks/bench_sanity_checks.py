"""Extension bench: model-randomization sanity checks per method.

Adapts Adebayo et al.'s sanity checks (the paper's reference [1], used to
argue LRP-style attributions can be unfaithful) to GNN explainers: each
method explains the same instances with the trained target and with a
weight-randomized copy; low similarity between the two = the method's
output actually depends on the model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import ExperimentConfig, build_instances, model_randomization_check
from repro.eval.experiments import method_config
from repro.explain import make_explainer
from repro.nn.zoo import get_model

from conftest import write_result

METHODS = ("gradcam", "deeplift", "gnnexplainer", "gnn_lrp", "flowx", "revelio")


def test_sanity_checks(benchmark):
    """Run the randomization check for every method on BA-Shapes/GCN."""
    model, dataset, _ = get_model("ba_shapes", "gcn")
    config = ExperimentConfig()
    effort = config.resolved_effort()
    instances = build_instances(dataset, min(3, config.resolved_instances()), seed=0,
                                motif_only=True, correct_only=True, model=model)
    if not instances:
        instances = build_instances(dataset, 3, seed=0, motif_only=True)

    def run():
        rows = [f"{'method':<14} {'rank_corr':>10} {'overlap':>8}  verdict"]
        for method in METHODS:
            corrs, overlaps = [], []
            for inst in instances:
                result = model_randomization_check(
                    lambda m: make_explainer(method, m, seed=0,
                                             **method_config(method, effort)),
                    model, inst.graph, target=inst.target)
                corrs.append(result.rank_correlation)
                overlaps.append(result.top_k_overlap)
            mean_overlap = float(np.mean(overlaps))
            verdict = "PASS" if mean_overlap < 0.6 else "FAIL"
            rows.append(f"{method:<14} {np.mean(corrs):>10.3f} "
                        f"{mean_overlap:>8.2f}  {verdict}")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("sanity_checks", rows,
                 header="Extension — model-randomization sanity checks (ba_shapes, GCN)")
