"""Tables VI and VII: top-10 message flows by the flow-based methods.

Uses the same instances as Fig. 6 and prints GNN-LRP / FlowX / Revelio
flow rankings side by side. Expected shapes from the paper: GNN-LRP's
Gradient×Input scores are large and arbitrary in scale, FlowX's Shapley
contributions are tiny, Revelio's tanh-masked scores live in (−1, 1); all
three should concentrate on flows into the motif for BA-Shapes.
"""

from __future__ import annotations

import pytest

from repro.eval import build_instances
from repro.eval.experiments import method_config
from repro.explain import make_explainer
from repro.nn.zoo import get_model
from repro.viz import format_flow_comparison

from conftest import write_result

FLOW_METHODS = ("gnn_lrp", "flowx", "revelio")
CASES = (("ba_shapes", "gcn"), ("ba_2motifs", "gin"))


@pytest.mark.parametrize("dataset_name,conv", CASES)
def test_top_flow_tables(benchmark, dataset_name, conv):
    """Regenerate the Table VI / VII flow comparison for one instance."""
    model, dataset, _ = get_model(dataset_name, conv)
    instances = build_instances(dataset, 1, seed=0, motif_only=True,
                                correct_only=True, model=model)
    if not instances:
        instances = build_instances(dataset, 1, seed=0, motif_only=True)
    inst = instances[0]

    def explain_all():
        return [
            make_explainer(m, model, seed=0, **method_config(m, 0.1)).explain(
                inst.graph, target=inst.target)
            for m in FLOW_METHODS
        ]

    explanations = benchmark.pedantic(explain_all, rounds=1, iterations=1)
    table = format_flow_comparison(explanations, k=10)
    label = "VI" if dataset_name == "ba_shapes" else "VII"
    write_result(f"table{label.lower()}_top_flows_{dataset_name}_{conv}",
                 table.split("\n"),
                 header=f"Table {label} — top-10 message flows ({dataset_name}, "
                        f"{conv.upper()}, target={inst.target})")
