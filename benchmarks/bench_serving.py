"""Serving load generator: coalesced daemon vs. the serial request path.

Boots the ``repro.serve`` daemon in-process on a real socket, drives it
with :data:`CONCURRENCY` keep-alive HTTP clients issuing explain
requests round-robin over :data:`UNIQUE_TARGETS` targets, and times the
same load twice — once with coalescing on (micro-batching + singleflight
dedup) and once through the serial baseline
(``coalesce=False, max_batch=1, max_linger_ms=0``), which executes every
request independently exactly like the library's ``explain_instances``
path. Every response from both runs must be byte-identical to the
library path for its target; the coalesced run must clear
:data:`SPEEDUP_FLOOR` over the serial wall-clock.

Results are merged into ``BENCH_perf.json`` under
``workloads/serving_load`` (p50/p99 latency, throughput, dedup and batch
counters) and the full merged payload is appended to
``BENCH_history.jsonl`` for the ``repro bench --check`` gate.

Run as a pytest marker (seconds-scale budget)::

    PYTHONPATH=src python -m pytest -m serve_slow benchmarks/bench_serving.py -q

as a script::

    PYTHONPATH=src python benchmarks/bench_serving.py

or as the CI smoke (reduced load, no artifact writes)::

    PYTHONPATH=src REPRO_SCALE=0.12 python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

SPEEDUP_FLOOR = 2.0
CONCURRENCY = 16
REQUESTS_PER_CLIENT = 4
UNIQUE_TARGETS = 4

DATASET = "ba_shapes"
CONV = "gcn"
EXPLAINER = "flowx"


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.15"))


def _params() -> dict:
    # FlowX with no finetuning: deterministic, cache-free per request, so
    # the serial baseline really recomputes (Revelio's explanation cache
    # would make repeats free on both paths and void the comparison).
    return {"samples": int(os.environ.get("REPRO_SERVE_SAMPLES", "2")),
            "finetune_epochs": 0}


async def _send(reader, writer, path, method="GET", body=None):
    """One HTTP/1.1 request over an existing keep-alive connection."""
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n")
    writer.write(head.encode("ascii") + payload)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("ascii").partition(":")
        if key.strip().lower() == "content-length":
            length = int(value.strip())
    data = await reader.readexactly(length) if length else b""
    return status, json.loads(data) if data else None


async def _client(port, bodies, latencies_ms):
    """One keep-alive client issuing its request sequence in order."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        responses = []
        for body in bodies:
            t0 = time.perf_counter()
            status, payload = await _send(reader, writer, "/explain",
                                          "POST", body)
            latencies_ms.append((time.perf_counter() - t0) * 1e3)
            responses.append((status, payload))
        return responses
    finally:
        writer.close()


def _percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _request_bodies(targets, concurrency, per_client):
    params = _params()
    return [[{"dataset": DATASET, "model": CONV, "explainer": EXPLAINER,
              "target": targets[(i + j) % len(targets)], "params": params,
              "scale": _scale()}
             for j in range(per_client)]
            for i in range(concurrency)]


def _run_load(runtime, *, coalesce, concurrency, per_client, targets):
    """Drive one daemon configuration; returns (responses, wall_s, stats)."""
    from repro.serve import ServeApp, ServeConfig

    config = ServeConfig(
        port=0,
        coalesce=coalesce,
        max_batch=16 if coalesce else 1,
        max_linger_ms=5.0 if coalesce else 0.0,
        queue_limit=4 * concurrency * per_client,
    )
    bodies = _request_bodies(targets, concurrency, per_client)
    latencies_ms: list[float] = []

    async def main():
        app = ServeApp(config, batch_runner=runtime)
        await app.start()
        status, health = await _healthz(app.port)
        assert status == 200 and health["status"] == "ok", health
        t0 = time.perf_counter()
        per_client_responses = await asyncio.gather(*[
            _client(app.port, client_bodies, latencies_ms)
            for client_bodies in bodies])
        wall_s = time.perf_counter() - t0
        stats = app.metrics.snapshot()
        await app.shutdown()
        return per_client_responses, wall_s, stats

    per_client_responses, wall_s, stats = asyncio.run(main())
    flat = [r for responses in per_client_responses for r in responses]
    assert all(status == 200 for status, _ in flat), \
        [status for status, _ in flat if status != 200]
    return flat, wall_s, stats, latencies_ms


async def _healthz(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await _send(reader, writer, "/healthz")
    finally:
        writer.close()


def _library_bytes(pool, model_key, targets):
    """The serial ``explain_instances`` answer, canonicalised per target."""
    from repro.eval.fidelity import Instance
    from repro.explain import explain_instances, make_explainer
    from repro.serve import canonical_bytes, wire_explanation

    model, dataset = pool.get(model_key)
    expected = {}
    for target in targets:
        explainer = make_explainer(EXPLAINER, model, **_params())
        batch = explain_instances(explainer, [Instance(dataset.graph, target)],
                                  mode="factual", raise_on_error=True)
        payload, _, _ = wire_explanation(batch.explanations[0])
        expected[target] = canonical_bytes(payload)
    return expected


def _assert_parity(responses, bodies_targets, expected):
    from repro.serve import canonical_bytes

    for (status, payload), target in zip(responses, bodies_targets):
        assert status == 200
        got = canonical_bytes(payload["explanation"])
        assert got == expected[target], \
            f"served explanation for target {target} diverged from the " \
            f"serial explain_instances path"


def _flat_targets(targets, concurrency, per_client):
    return [targets[(i + j) % len(targets)]
            for i in range(concurrency) for j in range(per_client)]


def run_benchmark(*, smoke: bool = False) -> dict:
    from repro.serve import ExplainRuntime, ModelPool

    concurrency = 4 if smoke else CONCURRENCY
    per_client = 1 if smoke else REQUESTS_PER_CLIENT
    targets = list(range(2 if smoke else UNIQUE_TARGETS))

    pool = ModelPool()
    model_key = (DATASET, CONV, _scale(), 0)
    pool.preload(model_key)  # warm before timing: the pool is the point
    runtime = ExplainRuntime(pool)
    expected = _library_bytes(pool, model_key, targets)
    flat_targets = _flat_targets(targets, concurrency, per_client)

    coalesced, coalesced_s, stats, latencies_ms = _run_load(
        runtime, coalesce=True, concurrency=concurrency,
        per_client=per_client, targets=targets)
    _assert_parity(coalesced, flat_targets, expected)
    assert stats["batches_total"] >= 1, stats

    if smoke:
        assert stats["deduped_requests"] + stats["batched_requests"] > 0, \
            f"no request was coalesced under concurrent load: {stats}"
        return {"mode": "smoke", "requests": len(coalesced),
                "serve": stats}

    serial, serial_s, serial_stats, _ = _run_load(
        runtime, coalesce=False, concurrency=concurrency,
        per_client=per_client, targets=targets)
    _assert_parity(serial, flat_targets, expected)
    assert serial_stats["deduped_requests"] == 0, serial_stats

    requests = concurrency * per_client
    payload = {
        "dataset": DATASET,
        "explainer": EXPLAINER,
        "params": _params(),
        "concurrency": concurrency,
        "unique_targets": len(targets),
        "requests": requests,
        "speedup_floor": SPEEDUP_FLOOR,
        "serial_seconds": round(serial_s, 3),
        "coalesced_seconds": round(coalesced_s, 3),
        "speedup": round(serial_s / max(coalesced_s, 1e-9), 2),
        "throughput_rps": round(requests / max(coalesced_s, 1e-9), 1),
        "latency_p50_ms": round(_percentile(latencies_ms, 0.50), 1),
        "latency_p99_ms": round(_percentile(latencies_ms, 0.99), 1),
        "batches": stats["batches_total"],
        "batched_requests": stats["batched_requests"],
        "deduped_requests": stats["deduped_requests"],
        "parity": "byte-identical",
    }
    assert payload["speedup"] >= SPEEDUP_FLOOR, \
        f"coalesced serving only {payload['speedup']}x over serial: {payload}"

    _write_artifacts(payload)
    return payload


def _write_artifacts(payload: dict) -> None:
    """Merge into BENCH_perf.json, append the merged payload to history."""
    from repro.obs.names import WORKLOAD_SERVING_LOAD

    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    results = existing.setdefault("workloads", {})
    results[WORKLOAD_SERVING_LOAD] = payload
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    # The bench gate reads the *latest* history record and requires every
    # committed workload in it, so append the full merged table, not just
    # this script's entry.
    import subprocess
    from datetime import datetime, timezone

    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              cwd=REPO_ROOT, capture_output=True, text=True,
                              timeout=10)
        sha = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": sha,
        "payload": existing,
    }
    with HISTORY_PATH.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")


@pytest.mark.serve_slow
def test_serving_load():
    payload = run_benchmark()
    print(json.dumps(payload, indent=2))


def main() -> int:
    smoke = "--smoke" in sys.argv[1:]
    payload = run_benchmark(smoke=smoke)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
