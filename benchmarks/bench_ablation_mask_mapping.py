"""Ablation A2: tanh vs. sigmoid flow-mask mapping (paper §IV-B).

The paper argues tanh's negative range prevents layer edges that merely
carry many flows from accumulating large masks. This bench compares the
two mappings on factual Fidelity− and on motif AUC (where the
many-flows-high-score pathology shows up most directly).
"""

from __future__ import annotations

import pytest

from repro.core import Revelio
from repro.core.revelio import MASK_ACTIVATIONS
from repro.eval import (
    DEFAULT_SPARSITIES,
    ExperimentConfig,
    build_instances,
    fidelity_minus,
    mean_explanation_auc,
)
from repro.eval.timing import time_explainer
from repro.nn.zoo import get_model

from conftest import bench_datasets, write_result

DATASETS = tuple(d for d in bench_datasets(("ba_shapes", "tree_cycles"))
                 if d in ("ba_shapes", "tree_cycles", "ba_2motifs"))


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_ablation_mask_mapping(benchmark, dataset_name):
    """Fidelity− and motif AUC per flow-mask mapping."""
    conv = "gin" if dataset_name == "ba_2motifs" else "gcn"
    model, dataset, _ = get_model(dataset_name, conv)
    config = ExperimentConfig()
    instances = build_instances(dataset, config.resolved_instances(), seed=0,
                                motif_only=True, correct_only=True, model=model)
    if not instances:
        instances = build_instances(dataset, config.resolved_instances(), seed=0,
                                    motif_only=True)
    graphs = [inst.graph for inst in instances]

    def run():
        rows = [f"{'mapping':<9} {'auc':>6}  "
                + "  ".join(f"s={s:.1f}" for s in DEFAULT_SPARSITIES)]
        for mapping in MASK_ACTIVATIONS:
            explainer = Revelio(model, epochs=max(25, int(500 * config.resolved_effort())),
                                mask_activation=mapping, seed=0)
            result = time_explainer(explainer, instances)
            auc = mean_explanation_auc(graphs, result.explanations)
            curve = [fidelity_minus(model, instances, result.explanations, s)
                     for s in DEFAULT_SPARSITIES]
            rows.append(f"{mapping:<9} {auc:>6.3f}  "
                        + "  ".join(f"{v:+.3f}" for v in curve))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(f"ablation_mask_mapping_{dataset_name}", rows,
                 header=f"Ablation A2 — flow-mask mapping ({dataset_name}, {conv.upper()})")
